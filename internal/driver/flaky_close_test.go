package driver

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// closeTrackLink records when it was closed and when the last Send
// landed, so a test can detect transmissions delivered into a
// torn-down link.
type closeTrackLink struct {
	mu       sync.Mutex
	closedAt time.Time
	lastSend time.Time
	sends    int
}

func (l *closeTrackLink) Send(entry int, wire []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastSend = time.Now()
	l.sends++
	return nil
}

func (l *closeTrackLink) Recv(timeout time.Duration) ([]byte, bool, error) {
	return nil, false, nil
}

func (l *closeTrackLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closedAt = time.Now()
	return nil
}

// TestFaultyLinkCloseCancelsDelay is the regression test for the
// delay-fault teardown race: before the fix, a Send sleeping out a delay
// fault would wake after Close and transmit into the torn-down inner
// link (for channel-backed links, a send-on-closed panic), and Close
// could not interrupt the sleep. Now Close wakes the sleeper, which
// aborts with an error, and nothing is delivered late.
func TestFaultyLinkCloseCancelsDelay(t *testing.T) {
	inner := &closeTrackLink{}
	// Delay up to 2s per transmission: without cancellation the sender
	// goroutine would keep delivering for seconds after Close.
	fl := NewFaultyLink(inner, LinkFaults{Seed: 1, Delay: 2 * time.Second})

	done := make(chan error, 1)
	go func() {
		for {
			if err := fl.Send(0, []byte{1, 2, 3}); err != nil {
				done <- err
				return
			}
		}
	}()

	time.Sleep(100 * time.Millisecond) // let the sender enter a delay sleep
	closeStart := time.Now()
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := time.Since(closeStart); d > 500*time.Millisecond {
		t.Fatalf("Close blocked %v waiting out a delay fault", d)
	}

	var sendErr error
	select {
	case sendErr = <-done:
	case <-time.After(time.Second):
		t.Fatal("sender goroutine still running 1s after Close (leaked)")
	}
	if sendErr == nil {
		t.Fatal("Send after Close returned nil")
	}
	if !strings.Contains(sendErr.Error(), "closed") {
		t.Errorf("Send error %q does not mention the closed link", sendErr)
	}

	// Nothing may land in the inner link after teardown settles. (A send
	// already past its delay when Close fires may race Close itself by a
	// hair; one sleeping out a delay must never be delivered.)
	time.Sleep(300 * time.Millisecond)
	inner.mu.Lock()
	lastSend, closedAt := inner.lastSend, inner.closedAt
	inner.mu.Unlock()
	if !lastSend.IsZero() && lastSend.After(closedAt.Add(100*time.Millisecond)) {
		t.Errorf("transmission delivered %v after Close", lastSend.Sub(closedAt))
	}

	// Close is idempotent.
	if err := fl.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestFaultyLinkCloseUnblocksRecvFlush covers the other delay path: a
// reorder-held transmission flushed from Recv also aborts on Close
// instead of sleeping on.
func TestFaultyLinkSendAfterCloseErrors(t *testing.T) {
	fl := NewFaultyLink(&closeTrackLink{}, LinkFaults{Seed: 1, Delay: time.Second})
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := fl.Send(0, []byte{7})
	if err == nil {
		t.Fatal("Send on a closed link succeeded")
	}
	if !errors.Is(err, errLinkClosed) {
		t.Errorf("err = %v, want errLinkClosed", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Errorf("Send on closed link slept %v before failing", d)
	}
}

// TestParseLinkFaultsErrors pins the error messages: each malformed spec
// must fail with a description naming the offending key and the expected
// form, because these surface directly as CLI errors.
func TestParseLinkFaultsErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"drop=2", "probability in [0,1]"},
		{"drop=-0.1", "probability in [0,1]"},
		{"dup=x", "probability in [0,1]"},
		{"reorder=1.01", "probability in [0,1]"},
		{"corrupt=NaN", "probability in [0,1]"},
		{"delay=5", "duration"},
		{"delay=-3ms", "duration"},
		{"seed=abc", "integer"},
		{"seed=1.5", "integer"},
		{"nope=1", "unknown link fault key"},
		{"drop", "key=value"},
		{"=0.5", "unknown link fault key"},
		{"drop=0.5,,dup=0.1", "key=value"},
		{"drop=0.2,bogus=3", "unknown link fault key"},
	}
	for _, c := range cases {
		_, err := ParseLinkFaults(c.spec)
		if err == nil {
			t.Errorf("spec %q accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

// FuzzParseLinkFaults checks that arbitrary specs never panic, that
// accepted specs always yield in-range configurations, and that parsing
// is deterministic.
func FuzzParseLinkFaults(f *testing.F) {
	f.Add("drop=0.3,dup=0.1,reorder=0.2,corrupt=0.05,delay=5ms,seed=42")
	f.Add("")
	f.Add("drop=1")
	f.Add("delay=1h,seed=-9")
	f.Add("drop=0.0,drop=1.0")
	f.Add(",")
	f.Add("a=b=c")
	f.Fuzz(func(t *testing.T, spec string) {
		lf, err := ParseLinkFaults(spec)
		lf2, err2 := ParseLinkFaults(spec)
		if (err == nil) != (err2 == nil) || lf != lf2 {
			t.Fatalf("non-deterministic parse of %q", spec)
		}
		if err != nil {
			return
		}
		for _, p := range []float64{lf.Drop, lf.Duplicate, lf.Reorder, lf.Corrupt} {
			if p < 0 || p > 1 {
				t.Fatalf("accepted out-of-range probability %v from %q", p, spec)
			}
		}
		if lf.Delay < 0 {
			t.Fatalf("accepted negative delay %v from %q", lf.Delay, spec)
		}
	})
}
