package driver

import (
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/hashfn"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/spec"
	"repro/internal/sym"
)

// Case is one concrete test case generated from a template.
type Case struct {
	Template *sym.Template
	// Input is the synthesized input packet.
	Input *packet.Packet
	// Entry is the injection point (entry pipeline index).
	Entry int
	// Wire is the serialized input.
	Wire []byte
	// Expected is the predicted output packet, nil when the path drops.
	Expected *packet.Packet
	// ID is the unique payload identifier.
	ID uint64
	// SkipReason is non-empty when the case could not be concretized
	// (e.g. a hash post-validation mismatch, per §4 of the paper).
	SkipReason string
}

// Outcome is the result of running one case against the target.
type Outcome struct {
	Case *Case
	// Pass is the overall verdict.
	Pass bool
	// Output is the captured packet (nil when absent).
	Output *packet.Packet
	// Absent reports that no packet was captured.
	Absent bool
	// Violations lists failed spec expectations.
	Violations []spec.Violation
	// ChecksumErrors lists output headers with invalid checksums.
	ChecksumErrors []string
	// Mismatches lists differences between the symbolic prediction and
	// the observed output — the signal that separates non-code bugs from
	// code bugs (a correct program whose compiled behaviour diverges).
	Mismatches []string
}

// Report aggregates outcomes.
type Report struct {
	Program  string
	Passed   int
	Failed   int
	Skipped  int
	Outcomes []*Outcome
}

// Failures returns the failing outcomes.
func (r *Report) Failures() []*Outcome {
	var out []*Outcome
	for _, o := range r.Outcomes {
		if !o.Pass {
			out = append(out, o)
		}
	}
	return out
}

// Summary renders a one-line result.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s: %d passed, %d failed, %d skipped", r.Program, r.Passed, r.Failed, r.Skipped)
}

// Checks selects which validations the checker applies; different tools
// in the evaluation wield different subsets (a verifier has no target
// output to compare, a compiler tester has no intent spec).
type Checks struct {
	// Prediction compares the captured output against the symbolic
	// prediction — this is what exposes non-code bugs.
	Prediction bool
	// Checksums recomputes and validates maintained checksum fields.
	Checksums bool
	// Specs evaluates intent expectations.
	Specs bool
	// Sanity applies universal well-formedness checks (forwarded IPv4
	// packets must have a nonzero TTL, outputs must carry the test ID).
	Sanity bool
}

// AllChecks is the full Meissa checker configuration.
func AllChecks() Checks {
	return Checks{Prediction: true, Checksums: true, Specs: true, Sanity: true}
}

// Driver runs test cases against a target over a link.
type Driver struct {
	Prog  *p4.Program
	Graph *cfg.Graph
	Link  Link
	Specs []*spec.Spec
	// Checks selects the validations to run; New sets AllChecks.
	Checks Checks
	// RecvTimeout bounds each capture; loopback links answer instantly.
	RecvTimeout time.Duration
	// checksummed lists (header, field) pairs the program maintains via
	// update_checksum, which the checker validates on every output.
	checksummed [][2]string
}

// New builds a driver.
func New(prog *p4.Program, g *cfg.Graph, link Link, specs []*spec.Spec) *Driver {
	d := &Driver{Prog: prog, Graph: g, Link: link, Specs: specs, Checks: AllChecks(), RecvTimeout: 200 * time.Millisecond}
	d.checksummed = collectChecksums(prog)
	return d
}

// collectChecksums finds every update_checksum(h, f) in the program.
func collectChecksums(prog *p4.Program) [][2]string {
	seen := map[[2]string]bool{}
	var out [][2]string
	var walk func(stmts []p4.Stmt)
	walk = func(stmts []p4.Stmt) {
		for _, s := range stmts {
			switch t := s.(type) {
			case *p4.ChecksumStmt:
				k := [2]string{t.Header, t.Field}
				if !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			case *p4.IfStmt:
				walk(t.Then)
				walk(t.Else)
			}
		}
	}
	for _, a := range prog.Actions {
		walk(a.Body)
	}
	for _, c := range prog.Controls {
		walk(c.Apply)
	}
	return out
}

// Concretize turns a template into a runnable case: it completes the
// model with defaults, resolves hash obligations (§4: compute when fixed,
// post-validate otherwise), synthesizes the input packet through the entry
// pipeline's parser, and predicts the expected output.
func (d *Driver) Concretize(t *sym.Template, id uint64) (*Case, error) {
	c := &Case{Template: t, ID: id}

	// Complete the model: every graph variable defaults to zero, except
	// TTL fields which default to a realistic 64 — a sender never emits
	// TTL-0 packets unless the path condition demands it.
	model := expr.State{}
	for v := range d.Graph.Vars {
		model[v] = 0
		if _, f, ok := p4.IsHeaderFieldVar(v); ok && f == "ttl" {
			model[v] = 64
		}
	}
	for v, val := range t.Model {
		model[v] = val
	}

	// The sender emits well-formed inputs: checksummed headers carry
	// valid checksums unless the path condition pins the field.
	for _, hf := range d.checksummed {
		header, field := hf[0], hf[1]
		v := p4.HeaderFieldVar(header, field)
		if _, constrained := t.Model[v]; constrained {
			continue
		}
		decl := d.Prog.Header(header)
		if decl == nil || decl.Field(field) == nil {
			continue
		}
		var vals []uint64
		var widths []expr.Width
		for _, f := range decl.Fields {
			if f.Name == field {
				continue
			}
			vals = append(vals, model[p4.HeaderFieldVar(header, f.Name)])
			widths = append(widths, expr.Width(f.Width))
		}
		model[v] = expr.Width(decl.Field(field).Width).Trunc(hashfn.Checksum(vals, widths))
	}

	// Resolve hash obligations in order; a conflict with a constrained
	// hash variable invalidates the case ("removes unmatched ones").
	for _, ob := range t.HashObligations {
		vals := make([]uint64, len(ob.Inputs))
		widths := make([]expr.Width, len(ob.Inputs))
		ok := true
		for i, in := range ob.Inputs {
			v, err := expr.EvalArith(in, model)
			if err != nil {
				ok = false
				break
			}
			vals[i] = v
			widths[i] = in.Width()
		}
		if !ok {
			continue
		}
		var computed uint64
		if ob.Kind == cfg.Hash {
			computed = hashfn.Hash(vals, widths, ob.Width)
		} else {
			computed = ob.Width.Trunc(hashfn.Checksum(vals, widths))
		}
		if prev, constrained := t.Model[ob.Var]; constrained && prev != computed {
			c.SkipReason = fmt.Sprintf("hash post-validation failed for %s: model %d, computed %d", ob.Var, prev, computed)
			return c, nil
		}
		model[ob.Var] = computed
	}

	// Entry point.
	if v, ok := model[cfg.EntryVar]; ok {
		c.Entry = int(v)
	}
	entries := 1
	if d.Prog.Topology != nil {
		entries = len(d.Prog.Topology.Entries)
	}
	if c.Entry >= entries {
		c.Entry = 0
	}

	// Synthesize the input through the entry pipeline's parser.
	entryName := d.entryPipeline(c.Entry)
	pl := d.Prog.Pipeline(entryName)
	if pl == nil || pl.Parser == "" {
		// Headerless pipelines take raw payload-only packets.
		c.Input = &packet.Packet{Payload: packet.WithID(id)}
	} else {
		in, err := packet.Synthesize(d.Prog, pl.Parser, model, id)
		if err != nil {
			return nil, fmt.Errorf("driver: synthesize: %w", err)
		}
		c.Input = in
	}
	wire, err := c.Input.Marshal(d.Prog)
	if err != nil {
		return nil, fmt.Errorf("driver: marshal: %w", err)
	}
	c.Wire = wire

	// Predict the output.
	if t.Dropped {
		c.Expected = nil
		return c, nil
	}
	final := expr.State{}
	for v, def := range model {
		final[v] = def
	}
	for v, valExpr := range t.Final {
		if v.IsAux() {
			continue
		}
		val, err := expr.EvalArith(valExpr, model)
		if err != nil {
			continue // unknowable (free hash input path); checker skips it
		}
		final[v] = val
	}
	c.Expected = packet.FromState(d.Prog, final, packet.WithID(id))
	return c, nil
}

func (d *Driver) entryPipeline(idx int) string {
	if d.Prog.Topology != nil {
		if idx < len(d.Prog.Topology.Entries) {
			return d.Prog.Topology.Entries[idx]
		}
		return d.Prog.Topology.Entries[0]
	}
	return d.Prog.Pipelines[0].Name
}

// RunTemplates concretizes and executes every template, returning the
// aggregated report.
func (d *Driver) RunTemplates(templates []*sym.Template) (*Report, error) {
	rep := &Report{Program: d.Prog.Name}
	for i, t := range templates {
		c, err := d.Concretize(t, uint64(i+1))
		if err != nil {
			return nil, err
		}
		if c.SkipReason != "" {
			rep.Skipped++
			continue
		}
		o, err := d.RunCase(c)
		if err != nil {
			return nil, err
		}
		rep.Outcomes = append(rep.Outcomes, o)
		if o.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
	}
	return rep, nil
}

// RunCase injects one case and checks the capture.
func (d *Driver) RunCase(c *Case) (*Outcome, error) {
	if err := d.Link.Send(c.Entry, c.Wire); err != nil {
		return nil, fmt.Errorf("driver: send: %w", err)
	}
	o := &Outcome{Case: c}

	// Receive: match by payload ID (the paper's sender/receiver
	// correlation). Unrelated captures are requeued conceptually; with
	// one-in-flight semantics the first capture is ours or absent.
	wire, got, err := d.Link.Recv(d.RecvTimeout)
	if err != nil {
		return nil, fmt.Errorf("driver: recv: %w", err)
	}
	if got {
		out, perr := d.decodeOutput(wire)
		if perr != nil {
			o.Mismatches = append(o.Mismatches, fmt.Sprintf("output packet undecodable: %v", perr))
		} else {
			if id, ok := out.ID(); !ok || id != c.ID {
				o.Mismatches = append(o.Mismatches, fmt.Sprintf("output carries wrong ID (want %d)", c.ID))
			}
			o.Output = out
		}
	} else {
		o.Absent = true
	}

	d.check(o)
	return o, nil
}

// decodeOutput re-parses a captured packet using the entry parser of the
// first pipeline (the harness's capture decoder).
func (d *Driver) decodeOutput(wire []byte) (*packet.Packet, error) {
	name := d.entryPipeline(0)
	pl := d.Prog.Pipeline(name)
	if pl == nil || pl.Parser == "" {
		return &packet.Packet{Payload: wire}, nil
	}
	return packet.Parse(d.Prog, pl.Parser, wire)
}

// check fills the outcome's verdict: prediction comparison, checksum
// validation, sanity checks and spec expectations, per d.Checks.
func (d *Driver) check(o *Outcome) {
	c := o.Case

	// 1. Compare against the symbolic prediction.
	if d.Checks.Prediction {
		switch {
		case c.Expected == nil && !o.Absent:
			o.Mismatches = append(o.Mismatches, "predicted drop, but a packet was captured")
		case c.Expected != nil && o.Absent:
			o.Mismatches = append(o.Mismatches, "predicted forward, but no packet was captured")
		case c.Expected != nil && o.Output != nil:
			o.Mismatches = append(o.Mismatches, diffPackets(c.Expected, o.Output)...)
		}
	}

	// 1b. Universal sanity checks.
	if d.Checks.Sanity && o.Output != nil {
		if _, ok := o.Output.ID(); !ok {
			o.Mismatches = append(o.Mismatches, "output payload lacks the test ID (malformed emit)")
		}
		// A forwarded IPv4 packet must not leave with TTL 0 when it
		// arrived alive.
		if outTTL, ok := o.Output.Field("ipv4", "ttl"); ok && outTTL == 0 {
			if inTTL, ok := c.Input.Field("ipv4", "ttl"); ok && inTTL > 0 {
				o.Mismatches = append(o.Mismatches, "forwarded IPv4 packet has TTL 0")
			}
		}
	}

	// 2. Validate checksums on the captured packet.
	if d.Checks.Checksums && o.Output != nil {
		for _, hf := range d.checksummed {
			header, field := hf[0], hf[1]
			if !o.Output.Has(header) {
				continue
			}
			decl := d.Prog.Header(header)
			var vals []uint64
			var widths []expr.Width
			for _, f := range decl.Fields {
				if f.Name == field {
					continue
				}
				v, _ := o.Output.Field(header, f.Name)
				vals = append(vals, v)
				widths = append(widths, expr.Width(f.Width))
			}
			want := hashfn.Checksum(vals, widths)
			got, _ := o.Output.Field(header, field)
			fw := expr.Width(decl.Field(field).Width)
			if fw.Trunc(want) != got {
				o.ChecksumErrors = append(o.ChecksumErrors,
					fmt.Sprintf("%s.%s = %#x, recomputed %#x", header, field, got, fw.Trunc(want)))
			}
		}
	}

	// 3. Evaluate intent specs whose assumptions hold for this input.
	if d.Checks.Specs {
		for _, s := range d.Specs {
			if !d.SpecApplies(s, c.Input) {
				continue
			}
			o.Violations = append(o.Violations, s.Check(d.Prog, c.Input, o.Output)...)
		}
	}

	o.Pass = len(o.Mismatches) == 0 && len(o.ChecksumErrors) == 0 && len(o.Violations) == 0
}

// SpecApplies evaluates a spec's assume clauses against the input packet.
func (d *Driver) SpecApplies(s *spec.Spec, in *packet.Packet) bool {
	st := expr.State{}
	for v := range d.Graph.Vars {
		st[v] = 0
	}
	in.ToState(st)
	bs, err := s.AssumeConstraints(d.Prog)
	if err != nil {
		return false
	}
	for _, b := range bs {
		ok, err := expr.EvalBool(b, st)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// diffPackets compares predicted and observed packets field by field.
func diffPackets(want, got *packet.Packet) []string {
	var out []string
	for _, wh := range want.Headers {
		if !got.Has(wh.Name) {
			out = append(out, fmt.Sprintf("header %s missing from output", wh.Name))
			continue
		}
		for f, wv := range wh.Fields {
			gv, _ := got.Field(wh.Name, f)
			if gv != wv {
				out = append(out, fmt.Sprintf("%s.%s = %d, predicted %d", wh.Name, f, gv, wv))
			}
		}
	}
	for _, gh := range got.Headers {
		if !want.Has(gh.Name) {
			out = append(out, fmt.Sprintf("unexpected header %s in output", gh.Name))
		}
	}
	return out
}
