package driver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"maps"
	"sort"
	"time"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/hashfn"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/spec"
	"repro/internal/switchsim"
	"repro/internal/sym"
)

// Case is one concrete test case generated from a template.
type Case struct {
	Template *sym.Template
	// Input is the synthesized input packet.
	Input *packet.Packet
	// Entry is the injection point (entry pipeline index).
	Entry int
	// Wire is the serialized input.
	Wire []byte
	// Expected is the predicted output packet, nil when the path drops.
	Expected *packet.Packet
	// ID is the unique payload identifier.
	ID uint64
	// SkipReason is non-empty when the case could not be concretized
	// (e.g. a hash post-validation mismatch, per §4 of the paper).
	SkipReason string
}

// Verdict classifies a case's end-to-end result. Separating Flaky and
// Lost from Fail is what lets a hardware-in-the-loop run distinguish link
// noise from data-plane bugs: a case that fails once but passes on a
// clean retransmit is link noise, not a bug, and the report says so.
type Verdict int

// Verdicts, from best to worst.
const (
	// VerdictPass: the first attempt passed every enabled check.
	VerdictPass Verdict = iota
	// VerdictFlaky: the case passed, but only after at least one
	// retransmission — the earlier attempt was absorbed link noise.
	VerdictFlaky
	// VerdictFail: every attempt failed with observed target behaviour
	// (a capture that violates the checks, or a predicted drop that
	// forwarded) — a real data-plane divergence.
	VerdictFail
	// VerdictLost: the link exhausted its retries without ever observing
	// the target's behaviour where a capture was expected. Ambiguous
	// between link loss and a drop bug; never silently folded into Fail.
	VerdictLost
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictFlaky:
		return "flaky"
	case VerdictFail:
		return "fail"
	case VerdictLost:
		return "lost"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Outcome is the result of running one case against the target.
type Outcome struct {
	Case *Case
	// Pass is the overall verdict (true for VerdictPass and VerdictFlaky).
	Pass bool
	// Verdict is the four-way classification.
	Verdict Verdict
	// Attempts counts transmissions performed for this case (>= 1).
	Attempts int
	// ShortCircuited reports the case was never transmitted: the crash
	// circuit breaker had already tripped when its turn came.
	ShortCircuited bool
	// Crashed reports that at least one attempt made the target panic
	// (observable only on links that surface injection errors).
	Crashed bool
	// Output is the captured packet (nil when absent).
	Output *packet.Packet
	// Absent reports that no packet was captured.
	Absent bool
	// Violations lists failed spec expectations.
	Violations []spec.Violation
	// ChecksumErrors lists output headers with invalid checksums.
	ChecksumErrors []string
	// Mismatches lists differences between the symbolic prediction and
	// the observed output — the signal that separates non-code bugs from
	// code bugs (a correct program whose compiled behaviour diverges).
	Mismatches []string
}

// Report aggregates outcomes.
type Report struct {
	Program string
	Passed  int
	Failed  int
	Skipped int
	// Flaky counts cases that passed only after retransmission (link
	// noise absorbed by the retry engine, never silently).
	Flaky int
	// Lost counts cases whose retries were exhausted without observing
	// the target (see VerdictLost).
	Lost int
	// Retransmissions counts extra attempts beyond each case's first.
	Retransmissions int
	// Skips lists the skipped cases with their SkipReason, so a skip is
	// never just an anonymous counter.
	Skips    []*Case
	Outcomes []*Outcome
	// TimeToFirstVerdict is the wall-clock from suite start to the first
	// case verdict (zero when every case was skipped) — the
	// responsiveness metric behind the run report's time_to_first_test.
	TimeToFirstVerdict time.Duration
	// BreakerTripped reports that Driver.BreakerThreshold consecutive
	// crashing cases tripped the circuit breaker; ShortCircuited counts
	// the cases recorded as Lost without transmission after the trip
	// (a subset of Lost).
	BreakerTripped bool
	ShortCircuited int
}

// Failures returns the failing outcomes.
func (r *Report) Failures() []*Outcome {
	var out []*Outcome
	for _, o := range r.Outcomes {
		if !o.Pass {
			out = append(out, o)
		}
	}
	return out
}

// Summary renders a one-line result.
func (r *Report) Summary() string {
	s := fmt.Sprintf("%s: %d passed, %d failed, %d skipped", r.Program, r.Passed, r.Failed, r.Skipped)
	if r.Flaky > 0 || r.Lost > 0 || r.Retransmissions > 0 {
		s += fmt.Sprintf(" (%d flaky, %d lost, %d retransmissions)", r.Flaky, r.Lost, r.Retransmissions)
	}
	return s
}

// Checks selects which validations the checker applies; different tools
// in the evaluation wield different subsets (a verifier has no target
// output to compare, a compiler tester has no intent spec).
type Checks struct {
	// Prediction compares the captured output against the symbolic
	// prediction — this is what exposes non-code bugs.
	Prediction bool
	// Checksums recomputes and validates maintained checksum fields.
	Checksums bool
	// Specs evaluates intent expectations.
	Specs bool
	// Sanity applies universal well-formedness checks (forwarded IPv4
	// packets must have a nonzero TTL, outputs must carry the test ID).
	Sanity bool
}

// AllChecks is the full Meissa checker configuration.
func AllChecks() Checks {
	return Checks{Prediction: true, Checksums: true, Specs: true, Sanity: true}
}

// Driver runs test cases against a target over a link.
type Driver struct {
	Prog  *p4.Program
	Graph *cfg.Graph
	Link  Link
	Specs []*spec.Spec
	// Checks selects the validations to run; New sets AllChecks.
	Checks Checks
	// RecvTimeout bounds each capture window; loopback links answer
	// instantly.
	RecvTimeout time.Duration
	// Retries is the number of retransmissions per case after the first
	// attempt. Each retransmission carries a fresh payload ID so stale
	// captures from earlier attempts remain identifiable.
	Retries int
	// CaseTimeout bounds one case end to end across every attempt and
	// backoff; 0 derives a budget from Retries, RecvTimeout and Backoff.
	CaseTimeout time.Duration
	// Backoff is the delay before the first retransmission, doubling on
	// each further retry.
	Backoff time.Duration
	// Window is the in-flight case limit. Above 1 RunTemplates uses the
	// pipelined burst engine (see pipeline.go); at 1 (or below) it runs
	// the lockstep send→recv loop. New sets DefaultWindow.
	Window int
	// BreakerThreshold trips the target-crash circuit breaker: after this
	// many consecutive non-passing cases that crashed the target, the
	// remaining cases are recorded as Lost without transmission instead
	// of burning each one's full retry budget on a dead target. Any
	// non-crashing verdict resets the streak. 0 disables the breaker.
	BreakerThreshold int
	// checksummed lists (header, field) pairs the program maintains via
	// update_checksum, which the checker validates on every output.
	checksummed [][2]string
	// csPlans precomputes each checksummed pair's destination and input
	// variables, so Concretize fills sender checksums without rebuilding
	// variable names per case.
	csPlans []csPlan
	// baseModel is the default-completed model every case starts from:
	// all graph variables zero except TTL fields at 64. Concretize clones
	// it in one bulk copy instead of rebuilding it key by key.
	baseModel expr.State
	// graphZero is the all-zero graph state SpecApplies starts from.
	graphZero expr.State
	// csScratch is the reused checksum input buffer for Concretize.
	csScratch []uint64
	// tmplCache memoizes each template's ID-independent concretization
	// for the pipelined engine (see concretized).
	tmplCache map[*sym.Template]*concretized
	// fieldOrder holds each declared header's field names, sorted, for
	// deterministic mismatch rendering without per-diff sorting.
	fieldOrder map[string][]string
	// nextID allocates monotonically increasing payload IDs: every
	// transmission (including retries) gets a never-reused ID.
	nextID uint64
	// pending holds captures demultiplexed away from the in-flight case,
	// keyed by payload ID — requeued, not discarded.
	pending map[uint64][]byte
}

// maxPending bounds the requeue buffer; beyond it, stale captures are
// dropped (they can only belong to already-decided cases).
const maxPending = 1024

// New builds a driver.
func New(prog *p4.Program, g *cfg.Graph, link Link, specs []*spec.Spec) *Driver {
	d := &Driver{
		Prog:        prog,
		Graph:       g,
		Link:        link,
		Specs:       specs,
		Checks:      AllChecks(),
		RecvTimeout: 200 * time.Millisecond,
		Retries:     2,
		Backoff:     10 * time.Millisecond,
		Window:      DefaultWindow,
		pending:     map[uint64][]byte{},
	}
	d.checksummed = collectChecksums(prog)

	d.fieldOrder = make(map[string][]string, len(prog.Headers))
	for _, h := range prog.Headers {
		names := make([]string, len(h.Fields))
		for i, f := range h.Fields {
			names[i] = f.Name
		}
		sort.Strings(names)
		d.fieldOrder[h.Name] = names
	}

	vt := p4.Vars(prog)
	if g != nil {
		d.baseModel = make(expr.State, len(g.Vars))
		d.graphZero = make(expr.State, len(g.Vars))
		for v := range g.Vars {
			d.graphZero[v] = 0
			d.baseModel[v] = 0
			if _, f, ok := p4.IsHeaderFieldVar(v); ok && f == "ttl" {
				d.baseModel[v] = 64
			}
		}
	}
	for _, hf := range d.checksummed {
		header, field := hf[0], hf[1]
		decl := prog.Header(header)
		if decl == nil || decl.Field(field) == nil {
			continue
		}
		pl := csPlan{
			v: vt.Field(header, field),
			w: expr.Width(decl.Field(field).Width),
		}
		for _, f := range decl.Fields {
			if f.Name == field {
				continue
			}
			pl.in = append(pl.in, vt.Field(header, f.Name))
			pl.iw = append(pl.iw, expr.Width(f.Width))
		}
		d.csPlans = append(d.csPlans, pl)
	}
	return d
}

// csPlan precomputes one maintained checksum's destination variable and
// width plus its input variables and widths.
type csPlan struct {
	v  expr.Var
	w  expr.Width
	in []expr.Var
	iw []expr.Width
}

// concretized caches a template's ID-independent concretization. The
// payload ID only ever appears in the 12-byte payload trailer — header
// fields, the marshaled header bytes and the predicted output never
// depend on it — so retransmissions and re-runs restamp the ID instead
// of re-deriving the whole case. Header slices and field maps are shared
// across the cases stamped from one entry; they are read-only after
// concretization.
type concretized struct {
	err        error
	skip       string
	entry      int
	headerWire []byte
	inHeaders  []packet.Header
	expHeaders []packet.Header
	dropped    bool
}

// concretizeFast is Concretize through the per-template cache; the
// pipelined engine's admission and retransmission paths use it.
func (d *Driver) concretizeFast(t *sym.Template, id uint64) (*Case, error) {
	cc, ok := d.tmplCache[t]
	if !ok {
		cc = d.buildConcretized(t)
		if d.tmplCache == nil {
			d.tmplCache = map[*sym.Template]*concretized{}
		}
		d.tmplCache[t] = cc
	}
	if cc.err != nil {
		return nil, cc.err
	}
	c := &Case{Template: t, ID: id, Entry: cc.entry, SkipReason: cc.skip}
	if cc.skip != "" {
		return c, nil
	}
	pl := packet.WithID(id)
	c.Input = &packet.Packet{Headers: cc.inHeaders, Payload: pl}
	wire := make([]byte, 0, len(cc.headerWire)+len(pl))
	wire = append(wire, cc.headerWire...)
	wire = append(wire, pl...)
	c.Wire = wire
	if !cc.dropped {
		c.Expected = &packet.Packet{Headers: cc.expHeaders, Payload: pl}
	}
	return c, nil
}

func (d *Driver) buildConcretized(t *sym.Template) *concretized {
	// ID 0 is never allocated (allocID starts at 1), so the prototype
	// case cannot collide with a live capture.
	c, err := d.Concretize(t, 0)
	if err != nil {
		return &concretized{err: err}
	}
	cc := &concretized{skip: c.SkipReason, entry: c.Entry}
	if cc.skip != "" {
		return cc
	}
	cc.headerWire = c.Wire[:len(c.Wire)-len(c.Input.Payload)]
	cc.inHeaders = c.Input.Headers
	if c.Expected == nil {
		cc.dropped = true
	} else {
		cc.expHeaders = c.Expected.Headers
	}
	return cc
}

// allocID returns the next unused payload ID.
func (d *Driver) allocID() uint64 {
	d.nextID++
	return d.nextID
}

// collectChecksums finds every update_checksum(h, f) in the program.
func collectChecksums(prog *p4.Program) [][2]string {
	seen := map[[2]string]bool{}
	var out [][2]string
	var walk func(stmts []p4.Stmt)
	walk = func(stmts []p4.Stmt) {
		for _, s := range stmts {
			switch t := s.(type) {
			case *p4.ChecksumStmt:
				k := [2]string{t.Header, t.Field}
				if !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			case *p4.IfStmt:
				walk(t.Then)
				walk(t.Else)
			}
		}
	}
	for _, a := range prog.Actions {
		walk(a.Body)
	}
	for _, c := range prog.Controls {
		walk(c.Apply)
	}
	return out
}

// Concretize turns a template into a runnable case: it completes the
// model with defaults, resolves hash obligations (§4: compute when fixed,
// post-validate otherwise), synthesizes the input packet through the entry
// pipeline's parser, and predicts the expected output.
func (d *Driver) Concretize(t *sym.Template, id uint64) (*Case, error) {
	c := &Case{Template: t, ID: id}

	// Complete the model: every graph variable defaults to zero, except
	// TTL fields which default to a realistic 64 — a sender never emits
	// TTL-0 packets unless the path condition demands it. The defaults
	// are precomputed in New; each case clones them in one bulk copy.
	model := maps.Clone(d.baseModel)
	for v, val := range t.Model {
		model[v] = val
	}

	// The sender emits well-formed inputs: checksummed headers carry
	// valid checksums unless the path condition pins the field.
	for _, pl := range d.csPlans {
		if _, constrained := t.Model[pl.v]; constrained {
			continue
		}
		vals := d.csScratch[:0]
		for _, in := range pl.in {
			vals = append(vals, model[in])
		}
		model[pl.v] = pl.w.Trunc(hashfn.Checksum(vals, pl.iw))
		d.csScratch = vals[:0]
	}

	// Resolve hash obligations in order; a conflict with a constrained
	// hash variable invalidates the case ("removes unmatched ones").
	for _, ob := range t.HashObligations {
		vals := make([]uint64, len(ob.Inputs))
		widths := make([]expr.Width, len(ob.Inputs))
		ok := true
		for i, in := range ob.Inputs {
			v, err := expr.EvalArith(in, model)
			if err != nil {
				ok = false
				break
			}
			vals[i] = v
			widths[i] = in.Width()
		}
		if !ok {
			continue
		}
		var computed uint64
		if ob.Kind == cfg.Hash {
			computed = hashfn.Hash(vals, widths, ob.Width)
		} else {
			computed = ob.Width.Trunc(hashfn.Checksum(vals, widths))
		}
		if prev, constrained := t.Model[ob.Var]; constrained && prev != computed {
			c.SkipReason = fmt.Sprintf("hash post-validation failed for %s: model %d, computed %d", ob.Var, prev, computed)
			return c, nil
		}
		model[ob.Var] = computed
	}

	// Entry point.
	if v, ok := model[cfg.EntryVar]; ok {
		c.Entry = int(v)
	}
	entries := 1
	if d.Prog.Topology != nil {
		entries = len(d.Prog.Topology.Entries)
	}
	if c.Entry >= entries {
		c.Entry = 0
	}

	// Synthesize the input through the entry pipeline's parser.
	entryName := d.entryPipeline(c.Entry)
	pl := d.Prog.Pipeline(entryName)
	if pl == nil || pl.Parser == "" {
		// Headerless pipelines take raw payload-only packets.
		c.Input = &packet.Packet{Payload: packet.WithID(id)}
	} else {
		in, err := packet.Synthesize(d.Prog, pl.Parser, model, id)
		if err != nil {
			return nil, fmt.Errorf("driver: synthesize: %w", err)
		}
		c.Input = in
	}
	wire, err := c.Input.Marshal(d.Prog)
	if err != nil {
		return nil, fmt.Errorf("driver: marshal: %w", err)
	}
	c.Wire = wire

	// Predict the output.
	if t.Dropped {
		c.Expected = nil
		return c, nil
	}
	final := maps.Clone(model)
	for v, valExpr := range t.Final {
		if v.IsAux() {
			continue
		}
		val, err := expr.EvalArith(valExpr, model)
		if err != nil {
			continue // unknowable (free hash input path); checker skips it
		}
		final[v] = val
	}
	c.Expected = packet.FromState(d.Prog, final, packet.WithID(id))
	return c, nil
}

func (d *Driver) entryPipeline(idx int) string {
	if d.Prog.Topology != nil {
		if idx < len(d.Prog.Topology.Entries) {
			return d.Prog.Topology.Entries[idx]
		}
		return d.Prog.Topology.Entries[0]
	}
	return d.Prog.Pipelines[0].Name
}

// RunTemplates concretizes and executes every template, returning the
// aggregated report.
func (d *Driver) RunTemplates(templates []*sym.Template) (*Report, error) {
	return d.RunTemplatesCtx(context.Background(), templates)
}

// RunTemplatesCtx is RunTemplates under a caller-supplied context; the
// whole suite stops at its deadline or cancellation. With Window > 1 the
// suite runs on the pipelined burst engine; Window <= 1 selects the
// lockstep loop below (one case fully decided before the next is sent),
// which the differential tests hold the engine to.
func (d *Driver) RunTemplatesCtx(ctx context.Context, templates []*sym.Template) (*Report, error) {
	if d.Window > 1 {
		return d.runPipelined(ctx, templates)
	}
	rep := &Report{Program: d.Prog.Name}
	suiteStart := time.Now()
	consecCrashes := 0
	for _, t := range templates {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("driver: %w", err)
		}
		c, err := d.Concretize(t, d.allocID())
		if err != nil {
			return nil, err
		}
		if c.SkipReason != "" {
			rep.Skipped++
			mCasesSkipped.Inc()
			rep.Skips = append(rep.Skips, c)
			continue
		}
		if rep.BreakerTripped {
			o := &Outcome{Case: c, Verdict: VerdictLost, ShortCircuited: true, Absent: true}
			rep.Outcomes = append(rep.Outcomes, o)
			rep.Lost++
			mCasesLost.Inc()
			rep.ShortCircuited++
			mShortCircuited.Inc()
			continue
		}
		caseStart := time.Now()
		o, err := d.RunCaseCtx(ctx, c)
		if err != nil {
			return nil, err
		}
		mCaseLatencyNS.ObserveSince(caseStart)
		rep.Outcomes = append(rep.Outcomes, o)
		if len(rep.Outcomes) == 1 {
			rep.TimeToFirstVerdict = time.Since(suiteStart)
		}
		rep.Retransmissions += o.Attempts - 1
		mRetransmits.Add(uint64(o.Attempts - 1))
		switch o.Verdict {
		case VerdictPass:
			rep.Passed++
			mCasesPassed.Inc()
		case VerdictFlaky:
			rep.Flaky++
			mCasesFlaky.Inc()
		case VerdictFail:
			rep.Failed++
			mCasesFailed.Inc()
		case VerdictLost:
			rep.Lost++
			mCasesLost.Inc()
		}
		if o.Crashed && !o.Pass {
			consecCrashes++
		} else {
			consecCrashes = 0
		}
		if d.BreakerThreshold > 0 && consecCrashes >= d.BreakerThreshold {
			rep.BreakerTripped = true
			mBreakerTripped.Inc()
		}
	}
	return rep, nil
}

// RunCase injects one case, retransmitting with exponential backoff and a
// fresh payload ID on each failed attempt, and returns the final outcome
// with its verdict.
func (d *Driver) RunCase(c *Case) (*Outcome, error) {
	return d.RunCaseCtx(context.Background(), c)
}

// caseBudget derives the per-case deadline when CaseTimeout is unset:
// every attempt's capture window, plus the full backoff ladder, plus
// slack for transport latency.
func (d *Driver) caseBudget() time.Duration {
	if d.CaseTimeout > 0 {
		return d.CaseTimeout
	}
	attempts := time.Duration(d.Retries + 1)
	backoff := time.Duration(0)
	step := d.Backoff
	for i := 0; i < d.Retries; i++ {
		backoff += step
		step *= 2
	}
	return attempts*d.RecvTimeout + backoff + 250*time.Millisecond
}

// RunCaseCtx runs one case under a per-case deadline. The retry state
// machine: attempt → (pass → Pass/Flaky) | (fail → backoff, fresh-ID
// retransmit) until retries or the deadline are exhausted; then Fail when
// target behaviour was observed, Lost when it never was.
func (d *Driver) RunCaseCtx(ctx context.Context, c *Case) (*Outcome, error) {
	ctx, cancel := context.WithTimeout(ctx, d.caseBudget())
	defer cancel()
	// The requeue buffer only ever holds captures for the in-flight case's
	// attempts; at case end everything left is stale.
	defer d.flushPending()

	cur := c
	backoff := d.Backoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	var last *Outcome
	observed := false // some attempt captured target behaviour
	crashed := false  // some attempt surfaced a target panic
	for attempt := 0; ; attempt++ {
		o := d.runAttempt(ctx, cur)
		o.Attempts = attempt + 1
		if !o.Absent {
			observed = true
		}
		crashed = crashed || o.Crashed
		if o.Pass {
			o.Verdict = VerdictPass
			if attempt > 0 {
				o.Verdict = VerdictFlaky
			}
			o.Crashed = crashed
			return o, nil
		}
		last = o
		if attempt >= d.Retries || ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		if ctx.Err() != nil {
			break
		}
		backoff *= 2
		// Fresh payload ID per retransmission: stale captures from the
		// previous attempt stay identifiable and never pollute this one.
		nc, err := d.Concretize(c.Template, d.allocID())
		if err != nil {
			return nil, err
		}
		if nc.SkipReason != "" {
			break
		}
		cur = nc
	}
	last.Crashed = crashed
	if !observed && !crashed && last.Case.Expected != nil {
		last.Verdict = VerdictLost
	} else {
		last.Verdict = VerdictFail
	}
	return last, nil
}

// runAttempt performs one transmission and capture. Link-level errors are
// attempt failures (retried), not run aborts — resilience against a noisy
// harness is the point.
func (d *Driver) runAttempt(ctx context.Context, c *Case) *Outcome {
	o := &Outcome{Case: c}
	if err := d.Link.Send(c.Entry, c.Wire); err != nil {
		var ce *switchsim.CrashError
		if errors.As(err, &ce) {
			o.Crashed = true
			o.Mismatches = append(o.Mismatches, err.Error())
		} else {
			o.Mismatches = append(o.Mismatches, fmt.Sprintf("send failed: %v", err))
		}
		o.Absent = true
		return o
	}

	// Receive: match by payload ID (the paper's sender/receiver
	// correlation), requeueing unrelated captures instead of discarding
	// or — worse — charging them to this case.
	wire, got, err := d.recvMatching(ctx, c.ID)
	if err != nil {
		o.Mismatches = append(o.Mismatches, fmt.Sprintf("recv failed: %v", err))
		o.Absent = true
		return o
	}
	if got {
		out, perr := d.decodeOutput(wire)
		if perr != nil {
			o.Mismatches = append(o.Mismatches, fmt.Sprintf("output packet undecodable: %v", perr))
		} else {
			if id, ok := out.ID(); !ok || id != c.ID {
				o.Mismatches = append(o.Mismatches, fmt.Sprintf("output carries wrong ID (want %d)", c.ID))
			}
			o.Output = out
		}
	} else {
		o.Absent = true
	}

	d.check(o)
	return o
}

// recvMatching reads captures until one carries the wanted payload ID or
// the window closes. Captures with other IDs are requeued for whoever
// awaits them; captures with no identifiable ID are delivered to the
// in-flight case (the checker decides what they mean).
func (d *Driver) recvMatching(ctx context.Context, id uint64) ([]byte, bool, error) {
	if w, ok := d.pending[id]; ok {
		delete(d.pending, id)
		return w, true, nil
	}
	deadline := time.Now().Add(d.RecvTimeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, false, nil
		}
		wire, got, err := d.Link.Recv(remaining)
		if err != nil {
			return nil, false, err
		}
		if !got {
			return nil, false, nil
		}
		got2, ok2 := wireID(wire)
		if !ok2 || got2 == id {
			return wire, true, nil
		}
		if len(d.pending) < maxPending {
			if _, dup := d.pending[got2]; !dup {
				d.pending[got2] = wire
			}
		}
	}
}

// flushPending clears the requeue buffer.
func (d *Driver) flushPending() {
	for k := range d.pending {
		delete(d.pending, k)
	}
}

// wireID extracts the payload ID from a raw capture without a full parse:
// Marshal appends the payload last, so a well-formed test capture ends in
// the 12-byte magic+ID trailer.
func wireID(wire []byte) (uint64, bool) {
	if len(wire) < 12 {
		return 0, false
	}
	tail := wire[len(wire)-12:]
	if binary.BigEndian.Uint32(tail[:4]) != packet.Magic {
		return 0, false
	}
	return binary.BigEndian.Uint64(tail[4:12]), true
}

// decodeOutput re-parses a captured packet using the entry parser of the
// first pipeline (the harness's capture decoder).
func (d *Driver) decodeOutput(wire []byte) (*packet.Packet, error) {
	name := d.entryPipeline(0)
	pl := d.Prog.Pipeline(name)
	if pl == nil || pl.Parser == "" {
		return &packet.Packet{Payload: wire}, nil
	}
	return packet.Parse(d.Prog, pl.Parser, wire)
}

// check fills the outcome's verdict: prediction comparison, checksum
// validation, sanity checks and spec expectations, per d.Checks.
func (d *Driver) check(o *Outcome) {
	c := o.Case

	// 1. Compare against the symbolic prediction.
	if d.Checks.Prediction {
		switch {
		case c.Expected == nil && !o.Absent:
			o.Mismatches = append(o.Mismatches, "predicted drop, but a packet was captured")
		case c.Expected != nil && o.Absent:
			o.Mismatches = append(o.Mismatches, "predicted forward, but no packet was captured")
		case c.Expected != nil && o.Output != nil:
			o.Mismatches = append(o.Mismatches, d.diffPackets(c.Expected, o.Output)...)
		}
	}

	// 1b. Universal sanity checks.
	if d.Checks.Sanity && o.Output != nil {
		if _, ok := o.Output.ID(); !ok {
			o.Mismatches = append(o.Mismatches, "output payload lacks the test ID (malformed emit)")
		}
		// A forwarded IPv4 packet must not leave with TTL 0 when it
		// arrived alive.
		if outTTL, ok := o.Output.Field("ipv4", "ttl"); ok && outTTL == 0 {
			if inTTL, ok := c.Input.Field("ipv4", "ttl"); ok && inTTL > 0 {
				o.Mismatches = append(o.Mismatches, "forwarded IPv4 packet has TTL 0")
			}
		}
	}

	// 2. Validate checksums on the captured packet.
	if d.Checks.Checksums && o.Output != nil {
		for _, hf := range d.checksummed {
			header, field := hf[0], hf[1]
			if !o.Output.Has(header) {
				continue
			}
			decl := d.Prog.Header(header)
			var vals []uint64
			var widths []expr.Width
			for _, f := range decl.Fields {
				if f.Name == field {
					continue
				}
				v, _ := o.Output.Field(header, f.Name)
				vals = append(vals, v)
				widths = append(widths, expr.Width(f.Width))
			}
			want := hashfn.Checksum(vals, widths)
			got, _ := o.Output.Field(header, field)
			fw := expr.Width(decl.Field(field).Width)
			if fw.Trunc(want) != got {
				o.ChecksumErrors = append(o.ChecksumErrors,
					fmt.Sprintf("%s.%s = %#x, recomputed %#x", header, field, got, fw.Trunc(want)))
			}
		}
	}

	// 3. Evaluate intent specs whose assumptions hold for this input.
	if d.Checks.Specs {
		for _, s := range d.Specs {
			if !d.SpecApplies(s, c.Input) {
				continue
			}
			o.Violations = append(o.Violations, s.Check(d.Prog, c.Input, o.Output)...)
		}
	}

	o.Pass = len(o.Mismatches) == 0 && len(o.ChecksumErrors) == 0 && len(o.Violations) == 0
}

// SpecApplies evaluates a spec's assume clauses against the input packet.
func (d *Driver) SpecApplies(s *spec.Spec, in *packet.Packet) bool {
	st := maps.Clone(d.graphZero)
	in.ToState(st)
	bs, err := s.AssumeConstraints(d.Prog)
	if err != nil {
		return false
	}
	for _, b := range bs {
		ok, err := expr.EvalBool(b, st)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// diffPackets compares predicted and observed packets field by field.
// Fields diff in sorted order so a failing case reports the same
// mismatch list on every run. The sorted order per declared header is
// precomputed in New; only undeclared headers sort per call.
func (d *Driver) diffPackets(want, got *packet.Packet) []string {
	var out []string
	for _, wh := range want.Headers {
		if !got.Has(wh.Name) {
			out = append(out, fmt.Sprintf("header %s missing from output", wh.Name))
			continue
		}
		fields := d.fieldOrder[wh.Name]
		if len(fields) != len(wh.Fields) {
			fields = make([]string, 0, len(wh.Fields))
			for f := range wh.Fields {
				fields = append(fields, f)
			}
			sort.Strings(fields)
		}
		for _, f := range fields {
			wv := wh.Fields[f]
			gv, _ := got.Field(wh.Name, f)
			if gv != wv {
				out = append(out, fmt.Sprintf("%s.%s = %d, predicted %d", wh.Name, f, gv, wv))
			}
		}
	}
	for _, gh := range got.Headers {
		if !want.Has(gh.Name) {
			out = append(out, fmt.Sprintf("unexpected header %s in output", gh.Name))
		}
	}
	return out
}
