package driver

import (
	"testing"
	"time"

	"repro/internal/switchsim"
)

// crashLink makes every transmission look like a target panic — the
// dead-target scenario the circuit breaker exists for.
type crashLink struct{ sends int }

func (l *crashLink) Send(int, []byte) error {
	l.sends++
	return &switchsim.CrashError{Panic: "target is down"}
}
func (l *crashLink) Recv(time.Duration) ([]byte, bool, error) { return nil, false, nil }
func (l *crashLink) Close() error                             { return nil }

func breakerDriver(t *testing.T, window int) (*Report, *crashLink, int) {
	t.Helper()
	_, _, templates, d := setup(t, nil)
	link := &crashLink{}
	d.Link.Close()
	d.Link = link
	d.Window = window
	d.Retries = 1
	d.Backoff = time.Millisecond
	d.RecvTimeout = 10 * time.Millisecond
	d.BreakerThreshold = 2
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatal(err)
	}
	return rep, link, len(templates)
}

func checkBreakerReport(t *testing.T, rep *Report, link *crashLink) {
	t.Helper()
	if !rep.BreakerTripped {
		t.Fatal("breaker did not trip with every case crashing")
	}
	if rep.ShortCircuited == 0 {
		t.Fatal("no cases were short-circuited after the trip")
	}
	if rep.ShortCircuited > rep.Lost {
		t.Fatalf("short-circuited %d > lost %d", rep.ShortCircuited, rep.Lost)
	}
	// Short-circuited cases never touch the wire: the link saw only the
	// attempts of cases that ran before the trip.
	var attempts, scAttempts int
	for _, o := range rep.Outcomes {
		attempts += o.Attempts
		if o.ShortCircuited {
			scAttempts += o.Attempts
			if o.Verdict != VerdictLost || !o.Absent {
				t.Fatalf("short-circuited outcome has verdict %s absent=%v", o.Verdict, o.Absent)
			}
		}
	}
	if scAttempts != 0 {
		t.Fatalf("short-circuited cases transmitted %d attempts", scAttempts)
	}
	if link.sends != attempts {
		t.Fatalf("link saw %d sends but outcomes claim %d attempts", link.sends, attempts)
	}
}

// TestBreakerTripsLockstep: with the target dead, the lockstep engine
// stops transmitting after BreakerThreshold consecutive crashed cases
// and marks the rest Lost without further attempts.
func TestBreakerTripsLockstep(t *testing.T) {
	rep, link, total := breakerDriver(t, 1)
	if len(rep.Outcomes) != total {
		t.Fatalf("outcomes %d != templates %d (every case must be accounted for)", len(rep.Outcomes), total)
	}
	checkBreakerReport(t, rep, link)
}

// TestBreakerTripsPipelined: same contract under the windowed engine —
// in-flight cases finish, everything not yet admitted is short-circuited.
func TestBreakerTripsPipelined(t *testing.T) {
	rep, link, total := breakerDriver(t, 2)
	if len(rep.Outcomes) != total {
		t.Fatalf("outcomes %d != templates %d", len(rep.Outcomes), total)
	}
	checkBreakerReport(t, rep, link)
}

// TestBreakerResetOnHealthyCase: a single persistently-crashing case
// surrounded by passing traffic must NOT trip a threshold-2 breaker —
// any non-crashing verdict resets the streak.
func TestBreakerResetOnHealthyCase(t *testing.T) {
	_, _, templates, d := setup(t, switchsim.Faults{
		switchsim.CrashWhen{Header: "ipv4", Field: "dstAddr", Value: 0x0A000001},
	})
	d.Retries = 1
	d.Backoff = time.Millisecond
	d.BreakerThreshold = 2
	for _, window := range []int{1, 8} {
		d.Window = window
		rep, err := d.RunTemplates(templates)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BreakerTripped || rep.ShortCircuited != 0 {
			t.Fatalf("window %d: breaker tripped on an isolated crash (short-circuited %d)",
				window, rep.ShortCircuited)
		}
		if rep.Passed == 0 {
			t.Fatalf("window %d: healthy cases did not pass", window)
		}
	}
}

// TestBreakerDisabledByDefault: threshold 0 means the breaker never
// engages, no matter how many consecutive crashes occur.
func TestBreakerDisabledByDefault(t *testing.T) {
	_, _, templates, d := setup(t, nil)
	d.Link.Close()
	link := &crashLink{}
	d.Link = link
	d.Window = 1
	d.Retries = 1
	d.Backoff = time.Millisecond
	d.RecvTimeout = 10 * time.Millisecond
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BreakerTripped || rep.ShortCircuited != 0 {
		t.Fatal("breaker engaged with threshold 0")
	}
}
