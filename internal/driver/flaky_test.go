package driver

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// scriptLink records sends and serves a scripted capture queue.
type scriptLink struct {
	sent  [][]byte
	queue [][]byte
}

func (s *scriptLink) Send(entry int, wire []byte) error {
	s.sent = append(s.sent, append([]byte(nil), wire...))
	return nil
}

func (s *scriptLink) Recv(timeout time.Duration) ([]byte, bool, error) {
	if len(s.queue) == 0 {
		return nil, false, nil
	}
	w := s.queue[0]
	s.queue = s.queue[1:]
	return w, true, nil
}

func (s *scriptLink) Close() error { return nil }

// exercise drives a FaultyLink through a fixed op sequence and returns a
// transcript of what the inner link saw and what Recv delivered.
func exercise(cfg LinkFaults) string {
	inner := &scriptLink{}
	for i := 0; i < 8; i++ {
		inner.queue = append(inner.queue, bytes.Repeat([]byte{byte(0x40 + i)}, 24))
	}
	fl := NewFaultyLink(inner, cfg)
	var log bytes.Buffer
	for i := 0; i < 8; i++ {
		fl.Send(0, bytes.Repeat([]byte{byte(i + 1)}, 24))
	}
	for i := 0; i < 24; i++ {
		w, ok, _ := fl.Recv(time.Millisecond)
		fmt.Fprintf(&log, "recv %v %x\n", ok, w)
	}
	for i, w := range inner.sent {
		fmt.Fprintf(&log, "sent %d %x\n", i, w)
	}
	fmt.Fprintf(&log, "stats %s\n", fl.Stats())
	return log.String()
}

// TestFaultyLinkDeterminism: the same seed must reproduce the exact same
// fault decisions — that is what makes a shaken CI run debuggable.
func TestFaultyLinkDeterminism(t *testing.T) {
	cfg := LinkFaults{Seed: 7, Drop: 0.3, Duplicate: 0.3, Reorder: 0.3, Corrupt: 0.2}
	a, b := exercise(cfg), exercise(cfg)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	cfg.Seed = 8
	if c := exercise(cfg); c == a {
		t.Error("different seeds produced identical fault schedules")
	}
}

// TestFaultyLinkPassthrough: an all-zero config is a transparent wire.
func TestFaultyLinkPassthrough(t *testing.T) {
	inner := &scriptLink{queue: [][]byte{{9, 9, 9}}}
	fl := NewFaultyLink(inner, LinkFaults{Seed: 1})
	want := []byte{1, 2, 3}
	if err := fl.Send(0, want); err != nil {
		t.Fatal(err)
	}
	if len(inner.sent) != 1 || !bytes.Equal(inner.sent[0], want) {
		t.Fatalf("passthrough mangled the wire: %x", inner.sent)
	}
	w, ok, err := fl.Recv(time.Millisecond)
	if err != nil || !ok || !bytes.Equal(w, []byte{9, 9, 9}) {
		t.Fatalf("passthrough recv = %x %v %v", w, ok, err)
	}
	s := fl.Stats()
	if s.Dropped+s.Duplicated+s.Reordered+s.Corrupted+s.Delayed != 0 {
		t.Errorf("clean link reported injected faults: %s", s)
	}
}

func TestParseLinkFaults(t *testing.T) {
	lf, err := ParseLinkFaults("drop=0.3,dup=0.1,reorder=0.2,corrupt=0.05,delay=5ms,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if lf.Drop != 0.3 || lf.Duplicate != 0.1 || lf.Reorder != 0.2 ||
		lf.Corrupt != 0.05 || lf.Delay != 5*time.Millisecond || lf.Seed != 42 {
		t.Fatalf("parsed %+v", lf)
	}
	if !lf.Active() {
		t.Error("parsed spec should be active")
	}
	if empty, err := ParseLinkFaults(""); err != nil || empty.Active() {
		t.Errorf("empty spec: %+v, %v", empty, err)
	}
	for _, bad := range []string{"drop=2", "drop=-0.1", "dup=x", "delay=5", "nope=1", "drop"} {
		if _, err := ParseLinkFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
