package driver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/switchsim"
	"repro/internal/sym"
)

// DefaultWindow is the pipelined engine's in-flight window: how many
// cases may have open capture windows or pending backoffs at once. One
// window's worth of cases is concretized, burst-transmitted, and decided
// as captures drain back, so the link never idles between cases the way
// the lockstep send→recv loop does.
const DefaultWindow = 256

// The pipelined engine is a single-coordinator event loop: exactly one
// goroutine admits, sends, drains, demultiplexes, and finalizes. Every
// Driver and Report field — nextID, the Report counters, the outcome
// slots — is touched only by that goroutine, which is why none of them
// need atomics; the obs counters it shares with other subsystems are
// already atomic. The concurrency lives in the link (a UDPSwitch's
// worker pool, a FaultyLink's delay timers), never in the driver.
//
// Per-case deadlines live in a hashed timer wheel rather than per-case
// goroutines or contexts: a case's capture window and retry backoff are
// each one O(1) wheel insertion, and the loop wakes exactly once for the
// earliest pending expiry instead of parking thousands of timers.

// pstate is a pipelined case's position in the retry state machine.
type pstate uint8

const (
	psIdle     pstate = iota // on the freelist / transiently unlinked
	psAwaiting               // transmitted, capture window open
	psBackoff                // failed attempt, waiting to retransmit
)

// pcase is the engine-side state of one in-flight case. Instances are
// pooled on a freelist: the steady-state loop admits, retries and
// finalizes cases without allocating engine machinery.
type pcase struct {
	idx      int // template slot; fixes Report ordering regardless of completion order
	tmpl     *sym.Template
	cur      *Case    // current attempt (fresh payload ID per retransmission)
	last     *Outcome // most recent failed attempt, reported on exhaustion
	attempt  int
	backoff  time.Duration
	start    time.Time // admission time (case latency metric)
	deadline time.Time // end-to-end case budget, as lockstep's per-case context
	recvBy   time.Time // capture window close (psAwaiting only)
	seq      uint64    // transmission order, for oldest-awaiting routing
	state    pstate
	observed bool // some attempt captured target behaviour
	crashed  bool // some attempt surfaced a target panic
	gen      uint64
}

// --- hashed timer wheel ---

const (
	wheelSlots = 256
	wheelTick  = 2 * time.Millisecond
)

// timerEnt is one pending expiry. gen snapshots the case's generation at
// insertion; the case bumps its generation whenever the timer becomes
// irrelevant (capture arrived, state changed), so cancellation is O(1)
// and stale entries are discarded lazily as the cursor passes them.
type timerEnt struct {
	c   *pcase
	gen uint64
	at  time.Time
}

// wheel is a hashed timer wheel: wheelSlots buckets of wheelTick each.
// Entries hash to slot (tick mod wheelSlots); an entry more than one
// revolution out simply waits in its slot until a cursor pass finds its
// expiry has actually arrived. Slot slices are reused, so steady-state
// insert/advance allocates nothing.
type wheel struct {
	slots [wheelSlots][]timerEnt
	epoch time.Time
	cur   int64 // absolute tick the cursor has advanced to
	count int   // live entries (stale ones included until swept)
}

func newWheel(now time.Time) *wheel { return &wheel{epoch: now} }

// tickOf rounds up, so an entry never fires before its expiry; at worst
// it fires one tick late.
func (w *wheel) tickOf(at time.Time) int64 {
	d := at.Sub(w.epoch)
	if d < 0 {
		d = 0
	}
	t := int64((d + wheelTick - 1) / wheelTick)
	if t < w.cur {
		t = w.cur
	}
	return t
}

// insert schedules c's next expiry, superseding any pending entry for c.
func (w *wheel) insert(c *pcase, at time.Time) {
	c.gen++
	t := w.tickOf(at)
	s := int(t % wheelSlots)
	w.slots[s] = append(w.slots[s], timerEnt{c: c, gen: c.gen, at: at})
	w.count++
}

// advance sweeps the cursor up to now, firing every due live entry.
// Entries belonging to a future revolution are kept in place. Returns
// the number of entries fired.
func (w *wheel) advance(now time.Time, fire func(*pcase)) int {
	fired := 0
	target := int64(now.Sub(w.epoch) / wheelTick)
	for w.cur <= target {
		s := int(w.cur % wheelSlots)
		ents := w.slots[s]
		kept := w.slots[s][:0]
		for _, e := range ents {
			switch {
			case e.gen != e.c.gen: // superseded: swept for free
				w.count--
			case e.at.After(now): // a later revolution's entry
				kept = append(kept, e)
			default:
				w.count--
				fired++
				fire(e.c)
			}
		}
		w.slots[s] = kept
		w.cur++
	}
	return fired
}

// nextWake returns the earliest live expiry; ok is false when no timers
// are pending.
func (w *wheel) nextWake() (time.Time, bool) {
	if w.count == 0 {
		return time.Time{}, false
	}
	var best time.Time
	found := false
	for s := range w.slots {
		for _, e := range w.slots[s] {
			if e.gen != e.c.gen {
				continue
			}
			if !found || e.at.Before(best) {
				best = e.at
				found = true
			}
		}
	}
	return best, found
}

// --- engine ---

type engine struct {
	d     *Driver
	fast  FastRecvLink // non-nil when the link can fill a caller buffer
	sync  bool         // link answers before Send returns (loopback)
	wheel *wheel
	// idMap demultiplexes captures to their awaiting case by payload ID —
	// the pipelined generalization of lockstep's single-case requeue
	// buffer. A capture whose ID maps to nothing belongs to a superseded
	// attempt and is dropped, exactly as lockstep's end-of-case flush.
	idMap    map[uint64]*pcase
	free     []*pcase
	scratch  []*pcase // reused iteration buffer (closeSyncWindows)
	outs     []*Outcome
	skips    []*Case
	recvBuf  []byte
	copyWire bool // parserless decode retains the wire slice; shield recvBuf
	awaiting int
	inflight int
	done     int
	seq      uint64
	rep      *Report
	start    time.Time
	firstSet bool
	err      error // deferred fatal error (Concretize failure mid-retry)
	// consecCrashes tracks the crash streak in finalization order; once
	// it reaches BreakerThreshold the breaker trips and un-admitted
	// templates short-circuit to Lost (in-flight cases still finish).
	consecCrashes int
}

// runPipelined is RunTemplatesCtx's engine when Window > 1. It keeps up
// to Window cases in flight: a burst of sends tops the window up, a
// drain loop routes every available capture to its case, synchronous
// links have their dead capture windows closed immediately, and the
// timer wheel fires recv-window and backoff expiries. Verdict semantics
// are bit-for-bit the lockstep state machine's; only the scheduling
// differs.
func (d *Driver) runPipelined(ctx context.Context, templates []*sym.Template) (*Report, error) {
	now := time.Now()
	eng := &engine{
		d:       d,
		wheel:   newWheel(now),
		idMap:   make(map[uint64]*pcase, d.Window),
		outs:    make([]*Outcome, len(templates)),
		skips:   make([]*Case, len(templates)),
		recvBuf: make([]byte, 65536),
		rep:     &Report{Program: d.Prog.Name},
		start:   now,
	}
	if f, ok := d.Link.(FastRecvLink); ok {
		eng.fast = f
	}
	if s, ok := d.Link.(SyncLink); ok && s.Synchronous() {
		eng.sync = true
	}
	if q, ok := d.Link.(QuietLink); ok {
		// The engine never reads link-side traces; let the target skip
		// producing them.
		q.SetQuiet(true)
		defer q.SetQuiet(false)
	}
	pl := d.Prog.Pipeline(d.entryPipeline(0))
	eng.copyWire = pl == nil || pl.Parser == ""

	next := 0
	for eng.done < len(templates) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("driver: %w", err)
		}
		progress := false
		// 1. Admission burst: top the window up, one send per case. A
		// tripped breaker short-circuits the whole remainder instead
		// (short-circuited cases hold no window slot).
		for next < len(templates) && (eng.rep.BreakerTripped || eng.inflight < d.Window) {
			if eng.rep.BreakerTripped {
				if err := eng.shortCircuit(templates[next], next); err != nil {
					return nil, err
				}
			} else if err := eng.admit(templates[next], next); err != nil {
				return nil, err
			}
			next++
			progress = true
		}
		// 2. Drain every capture already available.
		if eng.drain(0) {
			progress = true
		}
		// 3. A synchronous link answered during Send; windows still open
		// after a full drain will never fill — close them now instead of
		// waiting out RecvTimeout.
		if eng.sync && eng.closeSyncWindows() {
			progress = true
		}
		// 4. Fire due recv-window and backoff timers.
		if eng.wheel.advance(time.Now(), eng.fire) > 0 {
			progress = true
		}
		if eng.err != nil {
			return nil, eng.err
		}
		// 5. Idle: block until the next timer, using a blocking recv on
		// asynchronous links so an early capture wakes the loop.
		if !progress && eng.done < len(templates) {
			wait := 5 * time.Millisecond // safety net; inflight cases always hold a timer
			if wake, ok := eng.wheel.nextWake(); ok {
				if dur := time.Until(wake); dur < wait {
					wait = dur
				}
			}
			if wait > 0 {
				if eng.sync {
					sleepCtx(ctx, wait)
				} else {
					// Block in recv so an early capture wakes the loop.
					// Some links report "nothing" immediately instead of
					// honouring the timeout; sleep a bounded slice then so
					// the idle wait never degrades into a spin.
					t0 := time.Now()
					if !eng.drain(wait) {
						if rem := wait - time.Since(t0); rem > 0 {
							if rem > time.Millisecond {
								rem = time.Millisecond
							}
							sleepCtx(ctx, rem)
						}
					}
				}
			}
		}
	}

	for _, o := range eng.outs {
		if o != nil {
			eng.rep.Outcomes = append(eng.rep.Outcomes, o)
		}
	}
	for _, c := range eng.skips {
		if c != nil {
			eng.rep.Skips = append(eng.rep.Skips, c)
		}
	}
	return eng.rep, nil
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (eng *engine) getPcase() *pcase {
	if n := len(eng.free); n > 0 {
		pc := eng.free[n-1]
		eng.free = eng.free[:n-1]
		return pc
	}
	return &pcase{}
}

func (eng *engine) putPcase(pc *pcase) {
	pc.gen++ // orphan any wheel entry still pointing here
	pc.tmpl, pc.cur, pc.last = nil, nil, nil
	pc.state = psIdle
	eng.free = append(eng.free, pc)
}

// admit concretizes one template and transmits its first attempt.
func (eng *engine) admit(t *sym.Template, idx int) error {
	d := eng.d
	c, err := d.concretizeFast(t, d.allocID())
	if err != nil {
		return err
	}
	if c.SkipReason != "" {
		eng.skips[idx] = c
		eng.rep.Skipped++
		mCasesSkipped.Inc()
		eng.done++
		return nil
	}
	pc := eng.getPcase()
	pc.idx = idx
	pc.tmpl = t
	pc.cur = c
	pc.last = nil
	pc.attempt = 0
	pc.backoff = d.Backoff
	if pc.backoff <= 0 {
		pc.backoff = time.Millisecond
	}
	pc.start = time.Now()
	pc.deadline = pc.start.Add(d.caseBudget())
	pc.observed, pc.crashed = false, false
	eng.inflight++
	eng.send(pc)
	return nil
}

// shortCircuit records a template's case as Lost without transmitting
// it: the crash breaker decided the target is gone, so burning the full
// retry budget per case would only stall the suite.
func (eng *engine) shortCircuit(t *sym.Template, idx int) error {
	d := eng.d
	c, err := d.concretizeFast(t, d.allocID())
	if err != nil {
		return err
	}
	if c.SkipReason != "" {
		eng.skips[idx] = c
		eng.rep.Skipped++
		mCasesSkipped.Inc()
		eng.done++
		return nil
	}
	eng.outs[idx] = &Outcome{Case: c, Verdict: VerdictLost, ShortCircuited: true, Absent: true}
	eng.rep.Lost++
	mCasesLost.Inc()
	eng.rep.ShortCircuited++
	mShortCircuited.Inc()
	eng.done++
	return nil
}

// send transmits the case's current attempt and opens its capture
// window. A send error fails the attempt immediately without a capture
// window and without running the checker — lockstep parity.
func (eng *engine) send(pc *pcase) {
	d := eng.d
	c := pc.cur
	if err := d.Link.Send(c.Entry, c.Wire); err != nil {
		o := &Outcome{Case: c}
		var ce *switchsim.CrashError
		if errors.As(err, &ce) {
			o.Crashed = true
			o.Mismatches = append(o.Mismatches, err.Error())
		} else {
			o.Mismatches = append(o.Mismatches, fmt.Sprintf("send failed: %v", err))
		}
		o.Absent = true
		eng.attemptDone(pc, o)
		return
	}
	pc.seq = eng.seq
	eng.seq++
	pc.state = psAwaiting
	pc.recvBy = time.Now().Add(d.RecvTimeout)
	if pc.recvBy.After(pc.deadline) {
		pc.recvBy = pc.deadline
	}
	eng.idMap[c.ID] = pc
	eng.awaiting++
	eng.wheel.insert(pc, pc.recvBy)
}

// unwatch closes a case's capture window: the demux entry is removed and
// the pending recv timer cancelled via generation bump.
func (eng *engine) unwatch(pc *pcase) {
	delete(eng.idMap, pc.cur.ID)
	eng.awaiting--
	pc.gen++
	pc.state = psIdle
}

// drain pulls captures from the link and routes each to its case.
// timeout applies only to the first read (a block-until-event wait);
// subsequent reads never block, so one call empties the link.
func (eng *engine) drain(timeout time.Duration) bool {
	got := false
	for {
		wire, ok, err := eng.recvOne(timeout)
		timeout = 0
		if err != nil {
			eng.chargeRecvError(err)
			return true
		}
		if !ok {
			return got
		}
		got = true
		eng.route(wire)
	}
}

// recvOne reads one capture, into the engine's reused buffer when the
// link supports it. Asynchronous links get a floor on the poll timeout:
// a deadline already in the past would report timeout without checking
// the socket's queue.
func (eng *engine) recvOne(timeout time.Duration) ([]byte, bool, error) {
	if !eng.sync && timeout <= 0 {
		timeout = 200 * time.Microsecond
	}
	if eng.fast != nil {
		n, ok, err := eng.fast.RecvInto(eng.recvBuf, timeout)
		if err != nil || !ok {
			return nil, ok, err
		}
		return eng.recvBuf[:n], true, nil
	}
	return eng.d.Link.Recv(timeout)
}

// route delivers one capture. ID-carrying captures go to their awaiting
// case (or are dropped as stale — the pipelined analogue of lockstep's
// end-of-case pending flush). Unidentifiable captures are charged to the
// oldest open window, as lockstep delivers them to its in-flight case.
func (eng *engine) route(wire []byte) {
	id, ok := wireID(wire)
	var pc *pcase
	if ok {
		pc = eng.idMap[id]
	} else {
		pc = eng.oldestAwaiting()
	}
	if pc == nil {
		return
	}
	eng.unwatch(pc)
	o := &Outcome{Case: pc.cur}
	out, perr := eng.decode(wire)
	if perr != nil {
		o.Mismatches = append(o.Mismatches, fmt.Sprintf("output packet undecodable: %v", perr))
	} else {
		if oid, ok2 := out.ID(); !ok2 || oid != pc.cur.ID {
			o.Mismatches = append(o.Mismatches, fmt.Sprintf("output carries wrong ID (want %d)", pc.cur.ID))
		}
		o.Output = out
	}
	eng.d.check(o)
	eng.attemptDone(pc, o)
}

// decode re-parses a capture. When the program is parserless the decoder
// retains the wire slice inside the report, so a capture read into the
// shared recv buffer is copied out first.
func (eng *engine) decode(wire []byte) (*packet.Packet, error) {
	if eng.copyWire && eng.fast != nil {
		wire = append([]byte(nil), wire...)
	}
	return eng.d.decodeOutput(wire)
}

func (eng *engine) oldestAwaiting() *pcase {
	var best *pcase
	for _, pc := range eng.idMap {
		if best == nil || pc.seq < best.seq {
			best = pc
		}
	}
	return best
}

// chargeRecvError fails the oldest awaiting case's attempt with the link
// error, without running the checker — lockstep's recv-error path.
func (eng *engine) chargeRecvError(err error) {
	pc := eng.oldestAwaiting()
	if pc == nil {
		return
	}
	eng.unwatch(pc)
	o := &Outcome{Case: pc.cur}
	o.Mismatches = append(o.Mismatches, fmt.Sprintf("recv failed: %v", err))
	o.Absent = true
	eng.attemptDone(pc, o)
}

// closeSyncWindows ends every open capture window: on a synchronous link
// a capture that has not arrived after a full drain never will.
func (eng *engine) closeSyncWindows() bool {
	if eng.awaiting == 0 {
		return false
	}
	eng.scratch = eng.scratch[:0]
	for _, pc := range eng.idMap {
		eng.scratch = append(eng.scratch, pc)
	}
	for _, pc := range eng.scratch {
		if pc.state == psAwaiting {
			eng.closeWindow(pc)
		}
	}
	return true
}

// closeWindow ends an open capture window with no packet; the absent
// attempt runs the checker exactly as lockstep's recv-timeout path (a
// predicted drop passes here).
func (eng *engine) closeWindow(pc *pcase) {
	eng.unwatch(pc)
	o := &Outcome{Case: pc.cur}
	o.Absent = true
	eng.d.check(o)
	eng.attemptDone(pc, o)
}

// fire handles a timer expiry: an awaiting case's capture window closed,
// or a backoff elapsed and the case retransmits with a fresh payload ID.
func (eng *engine) fire(pc *pcase) {
	switch pc.state {
	case psAwaiting:
		eng.closeWindow(pc)
	case psBackoff:
		now := time.Now()
		if !now.Before(pc.deadline) {
			eng.finalizeFail(pc)
			return
		}
		pc.backoff *= 2
		pc.attempt++
		d := eng.d
		nc, err := d.concretizeFast(pc.tmpl, d.allocID())
		if err != nil {
			eng.err = err
			return
		}
		if nc.SkipReason != "" {
			// A retransmission that no longer concretizes ends the case
			// with its last observed failure, as lockstep's break.
			eng.finalizeFail(pc)
			return
		}
		pc.cur = nc
		eng.send(pc)
	}
}

// attemptDone is the lockstep retry state machine, one transition per
// completed attempt: pass → Pass/Flaky; fail → backoff and retransmit,
// until retries or the case deadline are exhausted.
func (eng *engine) attemptDone(pc *pcase, o *Outcome) {
	d := eng.d
	o.Attempts = pc.attempt + 1
	if !o.Absent {
		pc.observed = true
	}
	pc.crashed = pc.crashed || o.Crashed
	if o.Pass {
		o.Verdict = VerdictPass
		if pc.attempt > 0 {
			o.Verdict = VerdictFlaky
		}
		o.Crashed = pc.crashed
		eng.finalize(pc, o)
		return
	}
	pc.last = o
	now := time.Now()
	if pc.attempt >= d.Retries || !now.Before(pc.deadline) {
		eng.finalizeFail(pc)
		return
	}
	pc.state = psBackoff
	wake := now.Add(pc.backoff)
	if wake.After(pc.deadline) {
		wake = pc.deadline
	}
	eng.wheel.insert(pc, wake)
}

// finalizeFail reports the last failed attempt with lockstep's
// exhaustion classification: Lost when the target was never observed on
// a case that expected a capture, Fail otherwise.
func (eng *engine) finalizeFail(pc *pcase) {
	last := pc.last
	last.Crashed = pc.crashed
	if !pc.observed && !pc.crashed && last.Case.Expected != nil {
		last.Verdict = VerdictLost
	} else {
		last.Verdict = VerdictFail
	}
	eng.finalize(pc, last)
}

// finalize records a case's verdict in its template slot and recycles
// the engine state.
func (eng *engine) finalize(pc *pcase, o *Outcome) {
	mCaseLatencyNS.ObserveSince(pc.start)
	eng.outs[pc.idx] = o
	if !eng.firstSet {
		eng.firstSet = true
		eng.rep.TimeToFirstVerdict = time.Since(eng.start)
	}
	eng.rep.Retransmissions += o.Attempts - 1
	mRetransmits.Add(uint64(o.Attempts - 1))
	switch o.Verdict {
	case VerdictPass:
		eng.rep.Passed++
		mCasesPassed.Inc()
	case VerdictFlaky:
		eng.rep.Flaky++
		mCasesFlaky.Inc()
	case VerdictFail:
		eng.rep.Failed++
		mCasesFailed.Inc()
	case VerdictLost:
		eng.rep.Lost++
		mCasesLost.Inc()
	}
	if o.Crashed && !o.Pass {
		eng.consecCrashes++
	} else {
		eng.consecCrashes = 0
	}
	if eng.d.BreakerThreshold > 0 && eng.consecCrashes >= eng.d.BreakerThreshold && !eng.rep.BreakerTripped {
		eng.rep.BreakerTripped = true
		mBreakerTripped.Inc()
		obs.RecordFlight(obs.FlightBreakerTrip, uint64(eng.consecCrashes), uint64(eng.rep.Lost), 0)
	}
	eng.done++
	eng.inflight--
	eng.putPcase(pc)
}
