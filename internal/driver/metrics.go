package driver

import "repro/internal/obs"

// Registry handles for driver observability, resolved once at package
// init. Link-fault handles are incremented at the same mutex-guarded
// sites as the LinkStats fields, so the process-wide registry and the
// per-link snapshot count the same injections.
var (
	// Injected link faults, one counter per fault kind (both directions).
	mLinkDropped    = obs.GetCounter("driver.link_dropped")
	mLinkDuplicated = obs.GetCounter("driver.link_duplicated")
	mLinkReordered  = obs.GetCounter("driver.link_reordered")
	mLinkCorrupted  = obs.GetCounter("driver.link_corrupted")
	mLinkDelayed    = obs.GetCounter("driver.link_delayed")

	// Test-case verdicts, one counter per Verdict value, plus the retry
	// traffic that produced them.
	mCasesPassed  = obs.GetCounter("driver.cases_passed")
	mCasesFailed  = obs.GetCounter("driver.cases_failed")
	mCasesSkipped = obs.GetCounter("driver.cases_skipped")
	mCasesFlaky   = obs.GetCounter("driver.cases_flaky")
	mCasesLost    = obs.GetCounter("driver.cases_lost")
	mRetransmits  = obs.GetCounter("driver.retransmissions")

	// Target-crash circuit breaker: trips after BreakerThreshold
	// consecutive crashing cases; later cases are Lost without
	// transmission.
	mBreakerTripped = obs.GetCounter("driver.breaker_tripped")
	mShortCircuited = obs.GetCounter("driver.cases_short_circuited")

	// mCaseLatencyNS is the per-test-case wall-clock histogram (send to
	// verdict, retries included; nanoseconds, log2 buckets).
	mCaseLatencyNS = obs.GetHistogram("driver.case_latency_ns")
)
