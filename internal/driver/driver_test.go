package driver

import (
	"testing"
	"time"

	"repro/internal/cfg"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/spec"
	"repro/internal/switchsim"
	"repro/internal/sym"
)

const driverProg = `
header ethernet { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4 { bit<8> ttl; bit<8> protocol; bit<16> checksum; bit<32> srcAddr; bit<32> dstAddr; }
metadata { bit<9> port; }
parser prs {
  state start {
    extract(ethernet);
    transition select(ethernet.etherType) {
      0x0800: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 { extract(ipv4); transition accept; }
}
action fwd(bit<9> p) { meta.port = p; ipv4.ttl = ipv4.ttl - 1; update_checksum(ipv4, checksum); }
action deny() { mark_drop(); }
table host {
  key = { ipv4.dstAddr : exact; }
  actions = { fwd; deny; }
  default_action = deny();
}
control ing { apply { if (ipv4.isValid() && ipv4.ttl > 1) { host.apply(); } else { mark_drop(); } } }
pipeline ig { parser = prs; control = ing; }
`

func setup(t *testing.T, faults switchsim.Faults) (*p4.Program, *cfg.Graph, []*sym.Template, *Driver) {
	t.Helper()
	prog := p4.MustParse(driverProg)
	rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
	g, err := cfg.Build(prog, rs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sym.Explore(sym.Config{Graph: g, Options: sym.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	target, err := switchsim.Compile(prog, rs, faults)
	if err != nil {
		t.Fatal(err)
	}
	d := New(prog, g, NewLoopback(target), nil)
	return prog, g, res.Templates, d
}

func TestRunTemplatesCleanPass(t *testing.T) {
	_, _, templates, d := setup(t, nil)
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		f := rep.Failures()[0]
		t.Fatalf("false positives: %v %v", f.Mismatches, f.ChecksumErrors)
	}
	if rep.Passed == 0 {
		t.Fatal("no cases ran")
	}
}

func TestConcretizeSetsSaneDefaults(t *testing.T) {
	_, _, templates, d := setup(t, nil)
	for i, tm := range templates {
		c, err := d.Concretize(tm, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if c.SkipReason != "" {
			continue
		}
		// Inputs must carry the unique ID.
		if id, ok := c.Input.ID(); !ok || id != uint64(i+1) {
			t.Errorf("case %d input ID = %d %v", i, id, ok)
		}
		// TTL defaults to 64 when unconstrained; otherwise it satisfies
		// the constraint — never an implausible 0 on forwarded paths.
		if ttl, ok := c.Input.Field("ipv4", "ttl"); ok && c.Expected != nil && ttl == 0 {
			t.Errorf("case %d forwards with input TTL 0", i)
		}
	}
}

func TestConcretizeFixesInputChecksums(t *testing.T) {
	prog, _, templates, d := setup(t, nil)
	decl := prog.Header("ipv4")
	for i, tm := range templates {
		c, err := d.Concretize(tm, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if c.SkipReason != "" || !c.Input.Has("ipv4") {
			continue
		}
		// The sender must emit valid IPv4 checksums (the program
		// maintains ipv4.checksum via update_checksum).
		cs, _ := c.Input.Field("ipv4", "checksum")
		if cs == 0 && len(decl.Fields) > 1 {
			t.Errorf("case %d input checksum left zero", i)
		}
	}
}

func TestDetectsFault(t *testing.T) {
	_, _, templates, d := setup(t, switchsim.Faults{switchsim.ChecksumSkip{Header: "ipv4"}})
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("checksum-skip fault undetected")
	}
	found := false
	for _, o := range rep.Failures() {
		if len(o.ChecksumErrors) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("expected a checksum error in some failing outcome")
	}
}

func TestChecksDisabled(t *testing.T) {
	_, _, templates, d := setup(t, switchsim.Faults{switchsim.ChecksumSkip{Header: "ipv4"}})
	d.Checks = Checks{} // everything off
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatal("disabled checks must not fail")
	}
}

func TestSpecViolationDetected(t *testing.T) {
	prog, g, templates, _ := setup(t, nil)
	sp := spec.MustParseOne(`
spec all_forwarded {
  assume ethernet.etherType == 0x0800;
  expect forwarded;
}
`)
	rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
	target, _ := switchsim.Compile(prog, rs, nil)
	d := New(prog, g, NewLoopback(target), []*spec.Spec{sp})
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatal(err)
	}
	// Some IPv4 packets are dropped (table miss), violating the spec.
	if rep.Failed == 0 {
		t.Fatal("expected spec violations for dropped IPv4 packets")
	}
}

func TestSpecAppliesFilters(t *testing.T) {
	prog, g, _, _ := setup(t, nil)
	sp := spec.MustParseOne(`
spec only_tcp {
  assume ipv4.protocol == 6;
  expect forwarded;
}
`)
	d := New(prog, g, nil, []*spec.Spec{sp})
	tcpIn := &packet.Packet{}
	tcpIn.SetField("ipv4", "protocol", 6)
	udpIn := &packet.Packet{}
	udpIn.SetField("ipv4", "protocol", 17)
	if !d.SpecApplies(sp, tcpIn) {
		t.Error("spec should apply to TCP input")
	}
	if d.SpecApplies(sp, udpIn) {
		t.Error("spec should not apply to UDP input")
	}
}

func TestUDPLinkRoundTrip(t *testing.T) {
	prog := p4.MustParse(driverProg)
	rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
	target, _ := switchsim.Compile(prog, rs, nil)
	sw, err := ServeUDP(target, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	link, err := DialUDP(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	in := &packet.Packet{
		Headers: []packet.Header{
			{Name: "ethernet", Fields: map[string]uint64{"etherType": 0x0800}},
			{Name: "ipv4", Fields: map[string]uint64{"ttl": 64, "protocol": 6, "dstAddr": 0x0A000001}},
		},
		Payload: packet.WithID(77),
	}
	wire, err := in.Marshal(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Send(0, wire); err != nil {
		t.Fatal(err)
	}
	out, ok, err := link.Recv(2 * time.Second)
	if err != nil || !ok {
		t.Fatalf("recv: ok=%v err=%v", ok, err)
	}
	pkt, err := packet.Parse(prog, "prs", out)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := pkt.ID(); !ok || id != 77 {
		t.Errorf("ID = %d %v", id, ok)
	}
	if ttl, _ := pkt.Field("ipv4", "ttl"); ttl != 63 {
		t.Errorf("ttl = %d, want 63", ttl)
	}
}

func TestUDPLinkDropTimesOut(t *testing.T) {
	prog := p4.MustParse(driverProg)
	target, _ := switchsim.Compile(prog, rules.NewSet(), nil) // no rules: all dropped
	sw, err := ServeUDP(target, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	link, err := DialUDP(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	in := &packet.Packet{
		Headers: []packet.Header{
			{Name: "ethernet", Fields: map[string]uint64{"etherType": 0x0800}},
			{Name: "ipv4", Fields: map[string]uint64{"ttl": 64, "dstAddr": 1}},
		},
		Payload: packet.WithID(1),
	}
	wire, _ := in.Marshal(prog)
	if err := link.Send(0, wire); err != nil {
		t.Fatal(err)
	}
	_, ok, err := link.Recv(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("dropped packet must not be captured")
	}
}

func TestLoopbackTraceAvailable(t *testing.T) {
	prog := p4.MustParse(driverProg)
	rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
	target, _ := switchsim.Compile(prog, rs, nil)
	lb := NewLoopback(target)
	in := &packet.Packet{
		Headers: []packet.Header{
			{Name: "ethernet", Fields: map[string]uint64{"etherType": 0x0800}},
			{Name: "ipv4", Fields: map[string]uint64{"ttl": 64, "dstAddr": 0x0A000001}},
		},
		Payload: packet.WithID(5),
	}
	wire, _ := in.Marshal(prog)
	if err := lb.Send(0, wire); err != nil {
		t.Fatal(err)
	}
	tr := lb.LastTrace()
	if tr == nil || len(tr.Trace) == 0 {
		t.Fatal("loopback must record execution traces")
	}
}

func TestCollectChecksums(t *testing.T) {
	prog := p4.MustParse(driverProg)
	got := collectChecksums(prog)
	if len(got) != 1 || got[0] != [2]string{"ipv4", "checksum"} {
		t.Errorf("checksummed = %v", got)
	}
}

func TestReportSummary(t *testing.T) {
	r := &Report{Program: "x", Passed: 2, Failed: 1, Skipped: 3}
	s := r.Summary()
	for _, want := range []string{"2 passed", "1 failed", "3 skipped"} {
		if !containsStr(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
