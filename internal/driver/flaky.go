package driver

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LinkFaults configures a FaultyLink: seeded, per-packet link noise in
// both directions. Rates are probabilities in [0, 1]; the same Seed over
// the same traffic reproduces the same fault sequence, so the checker's
// robustness is itself testable deterministically.
type LinkFaults struct {
	// Seed fixes the fault RNG; runs with equal seeds make identical
	// drop/duplicate/reorder/corrupt decisions.
	Seed int64
	// Drop loses a packet outright (applied per direction).
	Drop float64
	// Duplicate delivers a packet twice.
	Duplicate float64
	// Reorder holds an outgoing packet back and releases it behind the
	// next transmission (or at the next capture window).
	Reorder float64
	// Corrupt flips one random bit of the packet.
	Corrupt float64
	// Delay adds up to this much extra latency before each transmission.
	Delay time.Duration
}

// Active reports whether any fault is configured.
func (f LinkFaults) Active() bool {
	return f.Drop > 0 || f.Duplicate > 0 || f.Reorder > 0 || f.Corrupt > 0 || f.Delay > 0
}

// String renders the configuration compactly.
func (f LinkFaults) String() string {
	return fmt.Sprintf("drop=%.2f dup=%.2f reorder=%.2f corrupt=%.2f delay=%v seed=%d",
		f.Drop, f.Duplicate, f.Reorder, f.Corrupt, f.Delay, f.Seed)
}

// ParseLinkFaults parses a CLI fault spec of the form
// "drop=0.3,dup=0.1,reorder=0.1,corrupt=0.01,delay=5ms,seed=42".
// Unknown keys and malformed values are errors; every key is optional.
func ParseLinkFaults(s string) (LinkFaults, error) {
	var f LinkFaults
	if strings.TrimSpace(s) == "" {
		return f, nil
	}
	for _, item := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(item), "=", 2)
		if len(kv) != 2 {
			return f, fmt.Errorf("driver: link fault %q wants key=value", item)
		}
		key, val := kv[0], kv[1]
		switch key {
		case "drop", "dup", "reorder", "corrupt":
			p, err := strconv.ParseFloat(val, 64)
			// The negated comparison also rejects NaN, which compares
			// false against both bounds.
			if err != nil || !(p >= 0 && p <= 1) {
				return f, fmt.Errorf("driver: link fault %s=%q wants a probability in [0,1]", key, val)
			}
			switch key {
			case "drop":
				f.Drop = p
			case "dup":
				f.Duplicate = p
			case "reorder":
				f.Reorder = p
			case "corrupt":
				f.Corrupt = p
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return f, fmt.Errorf("driver: link fault delay=%q wants a duration", val)
			}
			f.Delay = d
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return f, fmt.Errorf("driver: link fault seed=%q wants an integer", val)
			}
			f.Seed = n
		default:
			return f, fmt.Errorf("driver: unknown link fault key %q", key)
		}
	}
	return f, nil
}

// LinkStats counts the faults a FaultyLink actually injected.
type LinkStats struct {
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Corrupted  uint64
	Delayed    uint64
}

// String renders the counters compactly.
func (s LinkStats) String() string {
	return fmt.Sprintf("dropped=%d duplicated=%d reordered=%d corrupted=%d delayed=%d",
		s.Dropped, s.Duplicated, s.Reordered, s.Corrupted, s.Delayed)
}

// FaultyLink wraps any Link and injects seeded faults — drop, duplicate,
// reorder, corrupt, delay — in both directions. It emulates the noisy
// harness cabling between the test controller and real switch hardware,
// where the link itself loses and mangles packets independently of any
// data-plane bug. The retrying driver must absorb this noise without
// reporting false failures; FaultyLink makes that property testable.
type FaultyLink struct {
	inner Link
	cfg   LinkFaults

	// closed is closed (once) by Close, cancelling any in-flight delay
	// sleep so a delayed transmission never races the inner link's
	// teardown (send-on-closed) and Close never waits out the delay.
	closed    chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	rng   *rand.Rand
	stats LinkStats
	// heldSend is a transmission held back by a reorder fault; it is
	// released behind the next Send, or at the next Recv.
	heldSend *sendReq
	// heldRecv queues extra inbound deliveries (duplicates).
	heldRecv [][]byte
}

type sendReq struct {
	entry int
	wire  []byte
}

// NewFaultyLink wraps inner with the configured faults.
func NewFaultyLink(inner Link, cfg LinkFaults) *FaultyLink {
	return &FaultyLink{
		inner:  inner,
		cfg:    cfg,
		closed: make(chan struct{}),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Stats returns the injected-fault counters so far.
func (l *FaultyLink) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Send implements Link, subjecting the transmission to the configured
// faults before it reaches the inner link.
func (l *FaultyLink) Send(entry int, wire []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var queue []sendReq
	if l.rng.Float64() < l.cfg.Drop {
		l.stats.Dropped++
		mLinkDropped.Inc()
	} else {
		w := append([]byte(nil), wire...)
		if l.cfg.Corrupt > 0 && len(w) > 0 && l.rng.Float64() < l.cfg.Corrupt {
			w[l.rng.Intn(len(w))] ^= 1 << uint(l.rng.Intn(8))
			l.stats.Corrupted++
			mLinkCorrupted.Inc()
		}
		queue = append(queue, sendReq{entry, w})
		if l.rng.Float64() < l.cfg.Duplicate {
			queue = append(queue, sendReq{entry, append([]byte(nil), w...)})
			l.stats.Duplicated++
			mLinkDuplicated.Inc()
		}
	}
	// A previously held transmission goes out behind this one: reordered.
	if l.heldSend != nil {
		queue = append(queue, *l.heldSend)
		l.heldSend = nil
	}
	if len(queue) > 0 && l.rng.Float64() < l.cfg.Reorder {
		held := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		l.heldSend = &held
		l.stats.Reordered++
		mLinkReordered.Inc()
	}
	return l.flushLocked(queue)
}

func (l *FaultyLink) flushLocked(queue []sendReq) error {
	for _, q := range queue {
		if l.cfg.Delay > 0 {
			t := time.NewTimer(time.Duration(l.rng.Int63n(int64(l.cfg.Delay)) + 1))
			select {
			case <-t.C:
				l.stats.Delayed++
				mLinkDelayed.Inc()
			case <-l.closed:
				// Close cancelled the delay: the link is going away, so
				// the rest of the queue is dropped, not delivered late
				// into a torn-down inner link.
				t.Stop()
				return errLinkClosed
			}
		}
		select {
		case <-l.closed:
			return errLinkClosed
		default:
		}
		if err := l.inner.Send(q.entry, q.wire); err != nil {
			return err
		}
	}
	return nil
}

// Recv implements Link: it releases any reorder-held transmission (the
// network eventually delivers it), then reads from the inner link,
// subjecting each capture to the same fault model.
func (l *FaultyLink) Recv(timeout time.Duration) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.heldSend != nil {
		held := *l.heldSend
		l.heldSend = nil
		if err := l.flushLocked([]sendReq{held}); err != nil {
			return nil, false, err
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		if len(l.heldRecv) > 0 {
			w := l.heldRecv[0]
			l.heldRecv = l.heldRecv[1:]
			return w, true, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, false, nil
		}
		w, ok, err := l.inner.Recv(remaining)
		if err != nil || !ok {
			return nil, ok, err
		}
		if l.rng.Float64() < l.cfg.Drop {
			l.stats.Dropped++
			mLinkDropped.Inc()
			continue
		}
		if l.cfg.Corrupt > 0 && len(w) > 0 && l.rng.Float64() < l.cfg.Corrupt {
			w = append([]byte(nil), w...)
			w[l.rng.Intn(len(w))] ^= 1 << uint(l.rng.Intn(8))
			l.stats.Corrupted++
			mLinkCorrupted.Inc()
		}
		if l.rng.Float64() < l.cfg.Duplicate {
			l.heldRecv = append(l.heldRecv, append([]byte(nil), w...))
			l.stats.Duplicated++
			mLinkDuplicated.Inc()
		}
		return w, true, nil
	}
}

// errLinkClosed reports a transmission abandoned because the link was
// closed while it was delayed. Idempotent Close is part of the Link
// contract, so the sentinel is internal: callers observe only the error.
var errLinkClosed = errors.New("driver: faulty link closed")

// Close implements Link. It first wakes any Send sleeping out a delay
// fault (the sleeper aborts with an error instead of transmitting into
// the closing inner link), then closes the inner link. Safe to call more
// than once.
func (l *FaultyLink) Close() error {
	l.closeOnce.Do(func() { close(l.closed) })
	return l.inner.Close()
}
