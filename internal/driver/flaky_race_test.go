package driver

import (
	"encoding/binary"
	"math/bits"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingLink is a thread-safe inner link that records every delivered
// payload. FaultyLink serializes inner calls under its own mutex, but the
// test reads counters from the main goroutine, so everything is atomic or
// mutex-guarded anyway.
type countingLink struct {
	sends atomic.Uint64
	mu    sync.Mutex
	wires [][]byte
}

func (c *countingLink) Send(entry int, wire []byte) error {
	c.sends.Add(1)
	c.mu.Lock()
	c.wires = append(c.wires, append([]byte(nil), wire...))
	c.mu.Unlock()
	return nil
}

func (c *countingLink) Recv(timeout time.Duration) ([]byte, bool, error) { return nil, false, nil }
func (c *countingLink) Close() error                                     { return nil }

// TestFaultyLinkConcurrentCounters hammers one FaultyLink from many
// goroutines (run under -race in CI) and asserts the injected-fault
// counters exactly explain the delta between what was sent and what the
// inner link observed: delivered = sent - dropped + duplicated, and every
// actually-transmitted packet passed through the delay fault.
func TestFaultyLinkConcurrentCounters(t *testing.T) {
	inner := &countingLink{}
	fl := NewFaultyLink(inner, LinkFaults{
		Seed:      99,
		Drop:      0.25,
		Duplicate: 0.25,
		Reorder:   0.25,
		Delay:     10 * time.Microsecond,
	})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 16)
			for i := 0; i < per; i++ {
				binary.BigEndian.PutUint64(buf, uint64(w))
				binary.BigEndian.PutUint64(buf[8:], uint64(i))
				if err := fl.Send(0, buf); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// A reorder fault may still be holding the final transmission; one
	// Recv releases it (the network eventually delivers).
	if _, _, err := fl.Recv(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := fl.Stats()
	sent := uint64(workers * per)
	wantDelivered := sent - st.Dropped + st.Duplicated
	if got := inner.sends.Load(); got != wantDelivered {
		t.Fatalf("inner link saw %d packets; counters say %d (sent %d - dropped %d + duplicated %d)",
			got, wantDelivered, sent, st.Dropped, st.Duplicated)
	}
	if st.Delayed != wantDelivered {
		t.Fatalf("delayed = %d, want one delay per delivered packet (%d)", st.Delayed, wantDelivered)
	}
	if st.Dropped == 0 || st.Duplicated == 0 || st.Reordered == 0 {
		t.Fatalf("expected every configured fault to fire at these rates: %s", st)
	}
	if st.Corrupted != 0 {
		t.Fatalf("corrupted = %d with corruption disabled", st.Corrupted)
	}
}

// parityPayload builds the (w, i) payload with even bit-parity. Sent
// payloads all having even parity means a one-bit corruption flip always
// produces a packet outside the sent set — no corrupted packet can
// masquerade as a different valid payload, whatever the goroutine
// schedule paired with the seeded fault sequence.
func parityPayload(w, i uint64) []byte {
	wire := make([]byte, 16)
	binary.BigEndian.PutUint64(wire, w)
	binary.BigEndian.PutUint64(wire[8:], i)
	if (bits.OnesCount64(w)+bits.OnesCount64(i))%2 == 1 {
		wire[0] = 1
	}
	return wire
}

// TestFaultyLinkCorruptionCounter isolates the corrupt fault (no drops or
// duplicates): the corrupted counter must equal the number of delivered
// packets that are not in the sent set.
func TestFaultyLinkCorruptionCounter(t *testing.T) {
	inner := &countingLink{}
	fl := NewFaultyLink(inner, LinkFaults{Seed: 5, Corrupt: 0.3})
	const workers, per = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := fl.Send(0, parityPayload(uint64(w), uint64(i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := fl.Stats()
	if got := inner.sends.Load(); got != workers*per {
		t.Fatalf("inner link saw %d packets, want %d (no drop/dup configured)", got, workers*per)
	}
	sent := map[string]bool{}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			sent[string(parityPayload(uint64(w), uint64(i)))] = true
		}
	}
	inner.mu.Lock()
	var mangled uint64
	for _, wire := range inner.wires {
		if !sent[string(wire)] {
			mangled++
		}
	}
	inner.mu.Unlock()
	if mangled != st.Corrupted {
		t.Fatalf("observed %d mangled packets, counter says %d", mangled, st.Corrupted)
	}
	if st.Corrupted == 0 {
		t.Fatal("corruption never fired at rate 0.3 over 400 packets")
	}
}
