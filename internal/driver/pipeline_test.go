package driver

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/cfg"
	"repro/internal/p4"
	"repro/internal/programs"
	"repro/internal/rules"
	"repro/internal/switchsim"
	"repro/internal/sym"
)

// explored holds one program's generation artifacts, shared across the
// engine modes under comparison (the templates are identical inputs; the
// target and driver are rebuilt per mode so payload IDs restart at 1).
type explored struct {
	prog      *p4.Program
	rules     *rules.Set
	graph     *cfg.Graph
	templates []*sym.Template
}

func explore(t testing.TB, prog *p4.Program, rs *rules.Set) *explored {
	t.Helper()
	g, err := cfg.Build(prog, rs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sym.Explore(sym.Config{Graph: g, Options: sym.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	return &explored{prog: prog, rules: rs, graph: g, templates: res.Templates}
}

func exploreGW1(t testing.TB) *explored {
	t.Helper()
	p := programs.GW(1, programs.Set1)
	return explore(t, p.Prog, p.Rules)
}

// runWindow executes the full suite at one in-flight window on a fresh
// target and driver. tweak customizes retry knobs before the run.
func runWindow(t testing.TB, e *explored, faults switchsim.Faults, window int, tweak func(*Driver)) *Report {
	t.Helper()
	target, err := switchsim.Compile(e.prog, e.rules, faults)
	if err != nil {
		t.Fatal(err)
	}
	d := New(e.prog, e.graph, NewLoopback(target), nil)
	d.Window = window
	if tweak != nil {
		tweak(d)
	}
	rep, err := d.RunTemplates(e.templates)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

var wantIDRe = regexp.MustCompile(`\(want \d+\)`)

// renderReport flattens a report into a canonical byte-comparable form.
// Outcomes and skips are already in template order in both engines.
// withIDs includes payload IDs; runs with retransmissions interleave ID
// allocation differently across engines, so those comparisons drop IDs.
func renderReport(rep *Report, withIDs bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "passed=%d failed=%d skipped=%d flaky=%d lost=%d retrans=%d\n",
		rep.Passed, rep.Failed, rep.Skipped, rep.Flaky, rep.Lost, rep.Retransmissions)
	for _, o := range rep.Outcomes {
		var id uint64
		if withIDs {
			id = o.Case.ID
		}
		fmt.Fprintf(&b, "case id=%d entry=%d wire=%d verdict=%s attempts=%d pass=%t absent=%t crashed=%t\n",
			id, o.Case.Entry, len(o.Case.Wire), o.Verdict, o.Attempts, o.Pass, o.Absent, o.Crashed)
		for _, m := range o.Mismatches {
			if !withIDs {
				// The wrong-ID diagnostic embeds the attempt's payload ID,
				// which follows the (excluded) allocation order.
				m = wantIDRe.ReplaceAllString(m, "(want #)")
			}
			fmt.Fprintf(&b, "  mismatch: %s\n", m)
		}
		for _, c := range o.ChecksumErrors {
			fmt.Fprintf(&b, "  checksum: %s\n", c)
		}
		for _, v := range o.Violations {
			fmt.Fprintf(&b, "  violation: %v\n", v)
		}
	}
	for _, c := range rep.Skips {
		fmt.Fprintf(&b, "skip reason=%q\n", c.SkipReason)
	}
	return b.String()
}

// TestPipelinedMatchesLockstepClean holds the pipelined engine to the
// lockstep loop on a clean loopback across windows: the reports must be
// byte-identical, payload IDs included, on the production-shaped gw-1
// corpus program (which exercises skips, predicted drops, VXLAN
// encapsulation and checksum maintenance).
func TestPipelinedMatchesLockstepClean(t *testing.T) {
	e := exploreGW1(t)
	want := renderReport(runWindow(t, e, nil, 1, nil), true)
	for _, w := range []int{2, 32, 256} {
		got := renderReport(runWindow(t, e, nil, w, nil), true)
		if got != want {
			t.Fatalf("window=%d report differs from lockstep\n--- lockstep ---\n%s--- pipelined ---\n%s", w, want, got)
		}
	}
	if !strings.Contains(want, "passed=") || strings.HasPrefix(want, "passed=0 ") {
		t.Fatalf("suite decided no cases:\n%s", want)
	}
}

// TestPipelinedMatchesLockstepBuggyTarget repeats the differential
// against a target compiled with an injected data-plane fault: the
// engines must classify the same cases as Fail with the same mismatch
// and checksum-error text. IDs are excluded — retransmissions interleave
// the ID sequence differently — but attempts must match exactly.
func TestPipelinedMatchesLockstepBuggyTarget(t *testing.T) {
	fast := func(d *Driver) {
		d.Retries = 1
		d.Backoff = time.Millisecond
	}
	cases := []struct {
		name   string
		setup  func(t *testing.T) *explored
		faults switchsim.Faults
	}{
		{
			name: "checksum-skip",
			setup: func(t *testing.T) *explored {
				prog := p4.MustParse(driverProg)
				rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
				return explore(t, prog, rs)
			},
			faults: switchsim.Faults{switchsim.ChecksumSkip{Header: "ipv4"}},
		},
		{
			name: "setvalid-noop",
			setup: func(t *testing.T) *explored {
				return exploreGW1(t)
			},
			faults: switchsim.Faults{switchsim.SetValidNoOp{Header: "vxlan"}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := c.setup(t)
			ref := runWindow(t, e, c.faults, 1, fast)
			if ref.Failed == 0 {
				t.Fatal("fault produced no failures; the differential is vacuous")
			}
			want := renderReport(ref, false)
			for _, w := range []int{2, 256} {
				got := renderReport(runWindow(t, e, c.faults, w, fast), false)
				if got != want {
					t.Fatalf("window=%d report differs from lockstep\n--- lockstep ---\n%s--- pipelined ---\n%s", w, want, got)
				}
			}
		})
	}
}

// TestPipelinedShakenLinkConverges drives both engines through a heavily
// shaken link — 30%% drop plus duplication and reordering — and requires
// both to converge: the retry machinery must absorb every injected fault
// (no Fail, no Lost) and report the noise as Flaky verdicts and
// retransmissions, never silently.
func TestPipelinedShakenLinkConverges(t *testing.T) {
	prog := p4.MustParse(driverProg)
	rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
	e := explore(t, prog, rs)
	faults := LinkFaults{Seed: 7, Drop: 0.3, Duplicate: 0.1, Reorder: 0.1}

	run := func(window int, seed int64) *Report {
		target, err := switchsim.Compile(prog, rs, nil)
		if err != nil {
			t.Fatal(err)
		}
		f := faults
		f.Seed = seed
		link := NewFaultyLink(NewLoopback(target), f)
		d := New(prog, e.graph, link, nil)
		d.Window = window
		d.Retries = 8 // 0.3^9 residual loss; a Lost verdict here is an engine bug
		d.Backoff = time.Millisecond
		d.RecvTimeout = 10 * time.Millisecond
		rep, err := d.RunTemplates(e.templates)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	for _, seed := range []int64{7, 21} {
		lock := run(1, seed)
		pipe := run(256, seed)
		for name, rep := range map[string]*Report{"lockstep": lock, "pipelined": pipe} {
			if rep.Failed != 0 || rep.Lost != 0 {
				t.Errorf("seed=%d %s did not converge: %s", seed, name, rep.Summary())
				for _, f := range rep.Failures() {
					t.Logf("  %s: %v", f.Verdict, f.Mismatches)
				}
			}
		}
		if got, want := len(pipe.Outcomes), len(lock.Outcomes); got != want {
			t.Errorf("seed=%d outcome counts diverge: pipelined=%d lockstep=%d", seed, got, want)
		}
		if pipe.Passed+pipe.Flaky != lock.Passed+lock.Flaky {
			t.Errorf("seed=%d converged verdicts diverge: pipelined=%d+%d lockstep=%d+%d",
				seed, pipe.Passed, pipe.Flaky, lock.Passed, lock.Flaky)
		}
	}
}

// TestPipelinedEngineMachineryAllocs pins the engine's steady-state
// zero-alloc guarantee on its own machinery: the timer wheel, the pcase
// freelist and the ID demux map recycle a full case lifecycle — admit,
// capture-window timer, cancellation, backoff timer, expiry — without
// allocating. (Report objects — Case, Outcome, captured Packet — are
// retained output and allocate identically in both engines.)
func TestPipelinedEngineMachineryAllocs(t *testing.T) {
	now := time.Now()
	w := newWheel(now)
	eng := &engine{wheel: w, idMap: make(map[uint64]*pcase, 64)}
	cases := make([]*Case, 64)
	for i := range cases {
		cases[i] = &Case{ID: uint64(i + 1)}
	}
	at := now
	lifecycle := func() {
		at = at.Add(wheelTick) // march time forward, as a live run does
		for _, c := range cases {
			pc := eng.getPcase()
			pc.cur = c
			pc.state = psAwaiting
			eng.idMap[c.ID] = pc
			eng.awaiting++
			w.insert(pc, at.Add(4*wheelTick))
		}
		// Half the windows fill (capture arrives: demux + timer cancel),
		// half expire through the wheel.
		for i, c := range cases {
			pc := eng.idMap[c.ID]
			if i%2 == 0 {
				eng.unwatch(pc)
				eng.putPcase(pc)
			}
		}
		w.advance(at.Add(8*wheelTick), func(pc *pcase) {
			eng.unwatch(pc)
			eng.putPcase(pc)
		})
		if len(eng.idMap) != 0 || w.count != 0 {
			t.Fatalf("lifecycle leaked state: idMap=%d wheel=%d", len(eng.idMap), w.count)
		}
	}
	// Warm the freelist, the demux map, and every wheel slot — the
	// cursor marches into a different slot each lifecycle, so a full
	// revolution is needed before the steady state.
	for i := 0; i < 2*wheelSlots; i++ {
		lifecycle()
	}
	if avg := testing.AllocsPerRun(100, lifecycle); avg != 0 {
		t.Errorf("steady-state engine machinery allocates %.2f allocs/op, want 0", avg)
	}
}
