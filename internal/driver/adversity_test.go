// Adversity tests: the acceptance scenario for the resilient driver. A
// heavily shaken link (seeded 30% drop + duplication + reordering) over a
// real UDP transport must converge to the same per-case verdicts as a
// clean in-process loopback — link noise surfaces as Flaky, never as a
// false Fail.
//
// This file is an external test package so it can drive the full system
// through the root package (which itself imports internal/driver).
package driver_test

import (
	"testing"
	"time"

	meissa "repro"
	"repro/internal/driver"
	"repro/internal/programs"
	"repro/internal/switchsim"
)

func testAdversity(t *testing.T, p *programs.Program) {
	t.Helper()
	sys, err := meissa.New(p.Prog, p.Rules, nil, meissa.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: the clean loopback run.
	cleanTarget, err := switchsim.Compile(p.Prog, p.Rules, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := sys.Test(driver.NewLoopback(cleanTarget), gen)
	if err != nil {
		t.Fatal(err)
	}

	// The same target behind a shaken UDP link.
	udpTarget, err := switchsim.Compile(p.Prog, p.Rules, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := driver.ServeUDP(udpTarget, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	ul, err := driver.DialUDP(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ul.Close()
	shaken := driver.NewFaultyLink(ul, driver.LinkFaults{
		Seed: 1, Drop: 0.3, Duplicate: 0.3, Reorder: 0.3,
	})

	d := sys.NewDriver(shaken, gen)
	// Enough retransmissions that P(all lost) is negligible even at 30%
	// loss in each direction; short windows keep the suite fast.
	d.Retries = 12
	d.RecvTimeout = 40 * time.Millisecond
	d.Backoff = time.Millisecond
	noisy, err := d.RunTemplates(gen.Templates)
	if err != nil {
		t.Fatal(err)
	}

	if len(noisy.Outcomes) != len(clean.Outcomes) {
		t.Fatalf("case count diverged: %d noisy vs %d clean", len(noisy.Outcomes), len(clean.Outcomes))
	}
	for i, no := range noisy.Outcomes {
		co := clean.Outcomes[i]
		if no.Pass != co.Pass {
			t.Errorf("case %d: noisy verdict %s (pass=%v) vs clean pass=%v — link noise changed a data-plane verdict",
				no.Case.ID, no.Verdict, no.Pass, co.Pass)
		}
	}
	if noisy.Failed != clean.Failed {
		t.Errorf("failed: noisy %d vs clean %d", noisy.Failed, clean.Failed)
	}
	if noisy.Lost != 0 {
		t.Errorf("%d cases lost — retry budget too small for the injected noise", noisy.Lost)
	}
	if noisy.Skipped != clean.Skipped {
		t.Errorf("skipped: noisy %d vs clean %d", noisy.Skipped, clean.Skipped)
	}
	stats := shaken.Stats()
	if stats.Dropped == 0 && stats.Duplicated == 0 && stats.Reordered == 0 {
		t.Error("fault injection inactive — the adversity run tested nothing")
	}
	t.Logf("clean: %s", clean.Summary())
	t.Logf("noisy: %s (injected %s)", noisy.Summary(), stats)
}

func TestAdversityRouter(t *testing.T) {
	testAdversity(t, programs.Router())
}

func TestAdversityGW1(t *testing.T) {
	testAdversity(t, programs.GW(1, programs.Set1))
}
