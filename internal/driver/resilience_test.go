package driver

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/hashfn"
	"repro/internal/p4"
	"repro/internal/rules"
	"repro/internal/switchsim"
	"repro/internal/sym"
)

// --- stub links for deterministic retry/demux tests ---

// preloadLink serves scripted captures before delegating to the inner
// link — it simulates late traffic from a previous case arriving first.
type preloadLink struct {
	Link
	pre [][]byte
}

func (p *preloadLink) Recv(timeout time.Duration) ([]byte, bool, error) {
	if len(p.pre) > 0 {
		w := p.pre[0]
		p.pre = p.pre[1:]
		return w, true, nil
	}
	return p.Link.Recv(timeout)
}

// dropFirstLink records every transmission and swallows the first N.
type dropFirstLink struct {
	Link
	sent  [][]byte
	drops int
}

func (l *dropFirstLink) Send(entry int, wire []byte) error {
	l.sent = append(l.sent, append([]byte(nil), wire...))
	if len(l.sent) <= l.drops {
		return nil
	}
	return l.Link.Send(entry, wire)
}

// blackholeLink accepts everything and captures nothing.
type blackholeLink struct{}

func (blackholeLink) Send(int, []byte) error { return nil }
func (blackholeLink) Recv(time.Duration) ([]byte, bool, error) {
	return nil, false, nil
}
func (blackholeLink) Close() error { return nil }

// forwardedCase concretizes the first template whose path forwards (the
// prediction expects a capture).
func forwardedCase(t *testing.T, d *Driver, templates []*sym.Template) (*sym.Template, *Case) {
	t.Helper()
	for _, tm := range templates {
		c, err := d.Concretize(tm, d.allocID())
		if err != nil {
			t.Fatal(err)
		}
		if c.SkipReason == "" && c.Expected != nil {
			return tm, c
		}
	}
	t.Fatal("no forwarded template in suite")
	return nil, nil
}

// TestDemuxRequeuesInterleavedOutputs is the regression test for the
// wrong-ID capture bug: a late output from another case arriving first
// must be requeued, not charged to the in-flight case. Before the demux
// fix this produced a false "wrong ID" failure on the first attempt.
func TestDemuxRequeuesInterleavedOutputs(t *testing.T) {
	prog, _, templates, d := setup(t, nil)
	tm, caseA := forwardedCase(t, d, templates)

	// Fabricate the other case's late output: same template, different ID.
	caseB, err := d.Concretize(tm, 9999)
	if err != nil {
		t.Fatal(err)
	}
	staleWire, err := caseB.Expected.Marshal(prog)
	if err != nil {
		t.Fatal(err)
	}

	d.Link = &preloadLink{Link: d.Link, pre: [][]byte{staleWire}}
	o, err := d.RunCase(caseA)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Pass || o.Verdict != VerdictPass {
		t.Fatalf("interleaved stale output broke the case: verdict %s, mismatches %v",
			o.Verdict, o.Mismatches)
	}
	if o.Attempts != 1 {
		t.Errorf("demux should absorb the stale capture without retrying (attempts = %d)", o.Attempts)
	}
	// The stale capture was requeued under its own ID, not discarded...
	if _, ok := d.pending[9999]; ok {
		t.Error("requeue buffer must be flushed at case end")
	}
}

// TestRetryAssignsFreshIDs: a dropped first transmission is retransmitted
// with a fresh payload ID and the case converges to Flaky — link noise,
// not a data-plane bug.
func TestRetryAssignsFreshIDs(t *testing.T) {
	_, _, templates, d := setup(t, nil)
	tm, _ := forwardedCase(t, d, templates)
	fl := &dropFirstLink{Link: d.Link, drops: 1}
	d.Link = fl
	d.Backoff = time.Millisecond

	c, err := d.Concretize(tm, d.allocID())
	if err != nil {
		t.Fatal(err)
	}
	o, err := d.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if o.Verdict != VerdictFlaky || !o.Pass {
		t.Fatalf("verdict = %s (pass=%v), want flaky", o.Verdict, o.Pass)
	}
	if o.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", o.Attempts)
	}
	if len(fl.sent) != 2 {
		t.Fatalf("transmissions = %d, want 2", len(fl.sent))
	}
	id0, ok0 := wireID(fl.sent[0])
	id1, ok1 := wireID(fl.sent[1])
	if !ok0 || !ok1 || id0 == id1 {
		t.Errorf("retransmission reused payload ID: %d vs %d", id0, id1)
	}
}

// TestLostVerdict: a link that never delivers exhausts its retries and
// reports Lost — explicitly ambiguous, never a silent Fail.
func TestLostVerdict(t *testing.T) {
	_, _, templates, d := setup(t, nil)
	tm, _ := forwardedCase(t, d, templates)
	d.Link = blackholeLink{}
	d.Retries = 2
	d.Backoff = time.Millisecond
	d.RecvTimeout = 5 * time.Millisecond

	c, err := d.Concretize(tm, d.allocID())
	if err != nil {
		t.Fatal(err)
	}
	o, err := d.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if o.Verdict != VerdictLost || o.Pass {
		t.Fatalf("verdict = %s, want lost", o.Verdict)
	}
	if o.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", o.Attempts)
	}
}

// TestPersistentFailureStaysFail: a deterministic target fault must fail
// on every attempt and keep the Fail verdict — retries never launder a
// real data-plane bug into Flaky.
func TestPersistentFailureStaysFail(t *testing.T) {
	_, _, templates, d := setup(t, switchsim.Faults{switchsim.ChecksumSkip{Header: "ipv4"}})
	d.Backoff = time.Millisecond
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("fault undetected")
	}
	if rep.Flaky != 0 || rep.Lost != 0 {
		t.Errorf("deterministic fault misclassified: %d flaky, %d lost", rep.Flaky, rep.Lost)
	}
	for _, o := range rep.Failures() {
		if o.Verdict != VerdictFail {
			t.Errorf("case %d verdict = %s, want fail", o.Case.ID, o.Verdict)
		}
		if o.Attempts != d.Retries+1 {
			t.Errorf("case %d gave up after %d attempts, want %d", o.Case.ID, o.Attempts, d.Retries+1)
		}
	}
}

// TestSkippedCasesRecorded: a hash post-validation conflict must land in
// Report.Skips with its reason, not vanish into a bare counter.
func TestSkippedCasesRecorded(t *testing.T) {
	_, _, _, d := setup(t, nil)
	v := p4.HeaderFieldVar("ipv4", "checksum")
	computed := expr.Width(16).Trunc(hashfn.Checksum([]uint64{5}, []expr.Width{16}))
	tm := &sym.Template{
		Model: expr.State{v: expr.Width(16).Trunc(computed + 1)},
		HashObligations: []sym.HashObligation{{
			Var:    v,
			Kind:   cfg.Checksum,
			Inputs: []expr.Arith{expr.C(5, 16)},
			Width:  16,
		}},
	}
	rep, err := d.RunTemplates([]*sym.Template{tm})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || len(rep.Skips) != 1 {
		t.Fatalf("skipped = %d, skips = %d, want 1/1", rep.Skipped, len(rep.Skips))
	}
	if rep.Skips[0].SkipReason == "" {
		t.Error("skip recorded without a reason")
	}
}

// TestSummaryIncludesResilienceCounters.
func TestSummaryIncludesResilienceCounters(t *testing.T) {
	r := &Report{Program: "x", Passed: 2, Failed: 1, Skipped: 3, Flaky: 4, Lost: 5, Retransmissions: 6}
	s := r.Summary()
	for _, want := range []string{"2 passed", "1 failed", "3 skipped", "4 flaky", "5 lost", "6 retransmissions"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	// Clean runs keep the legacy one-liner.
	clean := (&Report{Program: "x", Passed: 2}).Summary()
	if strings.Contains(clean, "flaky") {
		t.Errorf("clean summary %q should omit resilience counters", clean)
	}
}

// TestOversizedDatagramIsAttemptFailure: a wire too large for the UDP
// transport must fail the attempt (and the case), not abort the run.
func TestOversizedDatagramIsAttemptFailure(t *testing.T) {
	prog := p4.MustParse(driverProg)
	rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
	target, _ := switchsim.Compile(prog, rs, nil)
	sw, err := ServeUDP(target, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	link, err := DialUDP(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	g, err := cfg.Build(prog, rs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sym.Explore(sym.Config{Graph: g, Options: sym.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	d := New(prog, g, link, nil)
	d.Retries = 0
	d.RecvTimeout = 20 * time.Millisecond

	tm, c := forwardedCase(t, d, res.Templates)
	c.Wire = make([]byte, 70000) // exceeds the maximum UDP datagram
	o, err := d.RunCase(c)
	if err != nil {
		t.Fatalf("oversized datagram aborted the run: %v", err)
	}
	if o.Pass {
		t.Fatal("oversized datagram cannot pass")
	}

	// The suite continues: a normal-sized case still round-trips.
	d.Retries = 2
	c2, err := d.Concretize(tm, d.allocID())
	if err != nil {
		t.Fatal(err)
	}
	o2, err := d.RunCase(c2)
	if err != nil {
		t.Fatal(err)
	}
	if !o2.Pass {
		t.Errorf("normal case after oversized failure: verdict %s, %v", o2.Verdict, o2.Mismatches)
	}
}

// TestUDPSwitchSurvivesGarbage: empty, malformed and out-of-range
// datagrams are counted and served through, never fatal.
func TestUDPSwitchSurvivesGarbage(t *testing.T) {
	prog := p4.MustParse(driverProg)
	rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
	target, _ := switchsim.Compile(prog, rs, nil)
	sw, err := ServeUDP(target, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	raw, err := net.Dial("udp", sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write([]byte{})                       // empty datagram
	raw.Write([]byte{255, 1, 2, 3})           // entry 255 out of range
	raw.Write(append([]byte{0}, make([]byte, 400)...)) // parser garbage

	// The switch still serves real traffic afterwards.
	link, err := DialUDP(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	g, _ := cfg.Build(prog, rs)
	res, _ := sym.Explore(sym.Config{Graph: g, Options: sym.DefaultOptions()})
	d := New(prog, g, link, nil)
	d.RecvTimeout = 100 * time.Millisecond
	_, c := forwardedCase(t, d, res.Templates)
	o, err := d.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Pass {
		t.Fatalf("switch unhealthy after garbage: verdict %s, %v", o.Verdict, o.Mismatches)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sw.Errors() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sw.Errors() == 0 {
		t.Error("out-of-range entry not counted as an error")
	}
}

// TestUDPSwitchAbsorbsMidSuitePanic is the acceptance scenario: one case's
// traffic panics the target on every attempt. The switch keeps serving,
// the affected case reports Lost (the crash is visible in the switch's
// crash counter), and the rest of the suite completes with its normal
// verdicts.
func TestUDPSwitchAbsorbsMidSuitePanic(t *testing.T) {
	prog := p4.MustParse(driverProg)
	rs := rules.MustParse("table host {\n ipv4.dstAddr=10.0.0.1 -> fwd(3);\n}")
	// The forwarded case's traffic (dstAddr 10.0.0.1) crashes the target.
	target, err := switchsim.Compile(prog, rs, switchsim.Faults{
		switchsim.CrashWhen{Header: "ipv4", Field: "dstAddr", Value: 0x0A000001},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ServeUDP(target, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	link, err := DialUDP(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	g, err := cfg.Build(prog, rs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sym.Explore(sym.Config{Graph: g, Options: sym.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	d := New(prog, g, link, nil)
	d.Retries = 2
	d.Backoff = time.Millisecond
	d.RecvTimeout = 50 * time.Millisecond
	rep, err := d.RunTemplates(res.Templates)
	if err != nil {
		t.Fatalf("suite aborted by target panic: %v", err)
	}
	if rep.Lost != 1 {
		t.Errorf("lost = %d, want exactly the crashing case", rep.Lost)
	}
	if rep.Failed != 0 {
		t.Errorf("failed = %d; a target crash must not masquerade as a data-plane failure", rep.Failed)
	}
	if rep.Passed != len(rep.Outcomes)-1 {
		t.Errorf("remaining suite incomplete: %d passed of %d", rep.Passed, len(rep.Outcomes))
	}
	if sw.Crashes() == 0 {
		t.Error("switch did not count the target crashes")
	}
}

// TestLoopbackCrashReportsTargetCrash: over a loopback link the crash is
// directly observable — the case fails with crash evidence, and the rest
// of the suite still runs.
func TestLoopbackCrashReportsTargetCrash(t *testing.T) {
	_, _, templates, d := setup(t, switchsim.Faults{
		switchsim.CrashWhen{Header: "ipv4", Field: "dstAddr", Value: 0x0A000001},
	})
	d.Backoff = time.Millisecond
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatalf("suite aborted by target panic: %v", err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want exactly the crashing case", rep.Failed)
	}
	o := rep.Failures()[0]
	if !o.Crashed {
		t.Error("outcome does not carry the crash flag")
	}
	found := false
	for _, m := range o.Mismatches {
		if strings.Contains(m, "target crashed") {
			found = true
		}
	}
	if !found {
		t.Errorf("crash not reported in mismatches: %v", o.Mismatches)
	}
	if rep.Passed == 0 {
		t.Error("remaining suite did not complete")
	}
}

// TestTransientCrashBecomesFlaky: a one-shot panic on the very first
// packet is absorbed by the retry engine — the case passes on the clean
// retransmit and is reported Flaky with crash evidence.
func TestTransientCrashBecomesFlaky(t *testing.T) {
	_, _, templates, d := setup(t, switchsim.Faults{switchsim.CrashOnPacket{N: 1}})
	d.Backoff = time.Millisecond
	rep, err := d.RunTemplates(templates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flaky != 1 || rep.Failed != 0 || rep.Lost != 0 {
		t.Fatalf("flaky/failed/lost = %d/%d/%d, want 1/0/0", rep.Flaky, rep.Failed, rep.Lost)
	}
	for _, o := range rep.Outcomes {
		if o.Verdict == VerdictFlaky && !o.Crashed {
			t.Error("flaky outcome lost its crash evidence")
		}
	}
}
