// Package driver implements Meissa's test driver (§4 of the paper): a
// sender that concretizes test case templates into packets, a receiver
// that captures the target's output, and a checker that validates
// checksums, relates packets by their unique payload IDs, compares the
// actual output against the symbolic prediction, and evaluates the
// developer's intent (spec) — reporting passed and failed test cases.
package driver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/switchsim"
)

// Link transports test packets to a switch under test and captures its
// output. Implementations: Loopback (in-process) and UDPLink (real
// sockets to a UDPSwitch, mirroring a lab harness port).
type Link interface {
	// Send injects a wire packet at the given entry point.
	Send(entry int, wire []byte) error
	// Recv captures one output packet, waiting up to timeout. ok=false
	// means nothing was captured (the packet was dropped or lost).
	Recv(timeout time.Duration) (wire []byte, ok bool, err error)
	// Close releases the link.
	Close() error
}

// FastRecvLink is an optional Link extension the pipelined engine probes
// for: RecvInto captures into a caller-owned buffer, so a steady receive
// stream reuses one buffer instead of allocating per capture.
type FastRecvLink interface {
	// RecvInto captures one output packet into buf, waiting up to timeout.
	// n is the capture length (n <= len(buf); longer captures are
	// truncated, like a short pcap snaplen). ok=false means nothing was
	// captured.
	RecvInto(buf []byte, timeout time.Duration) (n int, ok bool, err error)
}

// QuietLink is an optional Link extension: SetQuiet(true) tells the link
// to stop retaining per-packet diagnostics (execution traces) while the
// pipelined engine drives it at line rate. The engine restores the
// previous mode when the run ends.
type QuietLink interface {
	SetQuiet(quiet bool)
}

// SyncLink marks links whose captures are delivered synchronously by
// Send (the in-process loopback): once Recv reports an empty queue,
// every outstanding capture has already arrived, so the pipelined engine
// closes capture windows immediately instead of waiting out RecvTimeout.
type SyncLink interface {
	Synchronous() bool
}

// maxRetainedTraces bounds the loopback's per-packet trace history: a
// long line-rate run must not accumulate traces without bound, and bug
// localization only ever consults the most recent ones.
const maxRetainedTraces = 256

// Loopback connects the driver directly to an in-process target.
type Loopback struct {
	target *switchsim.Target
	mu     sync.Mutex
	queue  [][]byte
	// traces holds the most recent target execution traces (bounded by
	// maxRetainedTraces), for bug localization. Empty in quiet mode.
	traces []*switchsim.Result
	// quiet switches Send to the target's trace-free line-rate inject.
	quiet bool
}

// NewLoopback returns a loopback link to the target.
func NewLoopback(t *switchsim.Target) *Loopback { return &Loopback{target: t} }

// SetQuiet implements QuietLink: quiet sends use the target's line-rate
// inject and retain no traces.
func (l *Loopback) SetQuiet(quiet bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.quiet = quiet
}

// Synchronous implements SyncLink: loopback captures are enqueued by Send
// itself.
func (l *Loopback) Synchronous() bool { return true }

// Send implements Link.
func (l *Loopback) Send(entry int, wire []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.quiet {
		// Raw quiet inject: the target deparses straight to wire bytes,
		// skipping the intermediate Packet the line-rate path never reads.
		res, err := l.target.InjectQuietWire(entry, wire)
		if err != nil {
			return err
		}
		if !res.Dropped {
			l.queue = append(l.queue, res.Wire)
		}
		return nil
	}
	res, err := l.target.Inject(entry, wire)
	if err != nil {
		return err
	}
	if len(l.traces) >= maxRetainedTraces {
		copy(l.traces, l.traces[1:])
		l.traces = l.traces[:len(l.traces)-1]
	}
	l.traces = append(l.traces, res)
	if res.Output != nil {
		data, err := res.Output.Marshal(l.target.Program())
		if err != nil {
			return err
		}
		l.queue = append(l.queue, data)
	}
	return nil
}

// Recv implements Link.
func (l *Loopback) Recv(timeout time.Duration) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) == 0 {
		return nil, false, nil
	}
	out := l.queue[0]
	l.queue = l.queue[1:]
	return out, true, nil
}

// RecvInto implements FastRecvLink.
func (l *Loopback) RecvInto(buf []byte, timeout time.Duration) (int, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) == 0 {
		return 0, false, nil
	}
	out := l.queue[0]
	l.queue = l.queue[1:]
	return copy(buf, out), true, nil
}

// Replay re-executes a wire packet through the target with tracing on
// and returns the execution trace, without enqueueing the capture for
// Recv. Bug localization uses this to obtain the physical trace of a
// specific failing case after a quiet line-rate run retained none — and
// unlike LastTrace, the trace is guaranteed to belong to that case.
func (l *Loopback) Replay(entry int, wire []byte) *switchsim.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	res, err := l.target.Inject(entry, wire)
	if err != nil {
		return nil
	}
	return res
}

// LastTrace returns the most recent target execution trace.
func (l *Loopback) LastTrace() *switchsim.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.traces) == 0 {
		return nil
	}
	return l.traces[len(l.traces)-1]
}

// Close implements Link.
func (l *Loopback) Close() error { return nil }

// --- UDP transport ---

// UDPSwitch serves a target over UDP: each datagram is
// [1-byte entry index | wire packet]; outputs are sent back to the
// sender's address. It emulates attaching the test harness to switch
// front-panel ports.
//
// The switch is hardened against a hostile harness: a per-packet panic in
// the target is recovered and counted as a crash rather than killing the
// serve loop, transient socket errors are counted and served through, and
// concurrent packet handling is bounded by a fixed worker pool with an
// overload queue that sheds excess load (counted as drops, like real
// hardware back-pressure). Close drains queued packets before releasing
// the socket.
type UDPSwitch struct {
	target *switchsim.Target
	conn   *net.UDPConn
	// readerWG tracks the socket reader; workerWG the handler pool.
	readerWG sync.WaitGroup
	workerWG sync.WaitGroup
	work     chan datagram
	closed   chan struct{}
	once     sync.Once
	closeErr error

	// injectMu serializes target execution: the simulated pipeline holds
	// persistent register state and is not reentrant.
	injectMu sync.Mutex

	mu      sync.Mutex
	crashes uint64
	dropped uint64
	errs    uint64
}

type datagram struct {
	entry int
	wire  []byte
	// pooled, when non-nil, is returned to dgramPool after handling.
	pooled *[]byte
	peer   *net.UDPAddr
}

// udpWorkers bounds concurrent packet handling; udpBacklog bounds queued
// datagrams beyond which the switch sheds load.
const (
	udpWorkers = 4
	udpBacklog = 256
)

// ServeUDP starts a UDP switch on addr (e.g. "127.0.0.1:0") and returns
// it; Addr reports the bound address.
func ServeUDP(target *switchsim.Target, addr string) (*UDPSwitch, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("driver: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("driver: listen: %w", err)
	}
	s := &UDPSwitch{
		target: target,
		conn:   conn,
		work:   make(chan datagram, udpBacklog),
		closed: make(chan struct{}),
	}
	s.readerWG.Add(1)
	go s.read()
	for i := 0; i < udpWorkers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for d := range s.work {
				s.handle(d)
			}
		}()
	}
	return s, nil
}

// Addr returns the switch's bound UDP address.
func (s *UDPSwitch) Addr() string { return s.conn.LocalAddr().String() }

// Crashes counts packets whose processing panicked in the target.
func (s *UDPSwitch) Crashes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes
}

// Dropped counts packets that produced no reply: data-plane drops,
// malformed datagrams, and load shed by the bounded queue.
func (s *UDPSwitch) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Errors counts inject, marshal, read and write errors absorbed while
// serving.
func (s *UDPSwitch) Errors() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errs
}

func (s *UDPSwitch) count(c *uint64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// read pulls datagrams off the socket into the bounded work queue. It
// never exits on a transient error — only on Close (or the socket dying
// underneath it), after which it closes the queue so workers drain.
// dgramPool recycles datagram wire buffers between the socket reader and
// the handler workers: at line rate the switch allocates no per-packet
// buffer in steady state.
var dgramPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

func (s *UDPSwitch) read() {
	defer s.readerWG.Done()
	defer close(s.work)
	buf := make([]byte, 65536)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Transient socket error: count it and keep serving.
			s.count(&s.errs)
			continue
		}
		if n < 1 {
			s.count(&s.dropped)
			continue
		}
		wp := dgramPool.Get().(*[]byte)
		*wp = append((*wp)[:0], buf[1:n]...)
		d := datagram{entry: int(buf[0]), wire: *wp, pooled: wp, peer: peer}
		select {
		case s.work <- d:
		default:
			// Queue full: shed load like an oversubscribed ingress port.
			dgramPool.Put(wp)
			s.count(&s.dropped)
		}
	}
}

// handle processes one datagram: inject, marshal, reply. Target panics
// are recovered (twice over: Inject recovers its own, and this guards the
// worker against everything else) and counted as crashes. The quiet
// inject is used unconditionally: nothing ever reads traces on the UDP
// path, and the trace-free interpreter is several times faster.
func (s *UDPSwitch) handle(d datagram) {
	res, err := func() (res *switchsim.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("driver: packet handler panicked: %v", r)
				s.count(&s.crashes)
			}
		}()
		s.injectMu.Lock()
		defer s.injectMu.Unlock()
		return s.target.InjectQuietWire(d.entry, d.wire)
	}()
	if d.pooled != nil {
		// The inject fully consumed the wire bytes (parse copies); the
		// buffer can go back to the pool.
		dgramPool.Put(d.pooled)
	}
	if err != nil {
		var ce *switchsim.CrashError
		if errors.As(err, &ce) {
			s.count(&s.crashes)
		} else {
			s.count(&s.errs)
		}
		return
	}
	if res.Dropped {
		s.count(&s.dropped) // dropped: nothing comes back, like real hardware
		return
	}
	if _, err := s.conn.WriteToUDP(res.Wire, d.peer); err != nil {
		s.count(&s.errs)
	}
}

// Close shuts the switch down gracefully: it stops the reader, lets the
// workers drain every queued packet (replies still flush over the open
// socket), then releases the socket. Safe to call more than once.
func (s *UDPSwitch) Close() error {
	s.once.Do(func() {
		close(s.closed)
		// Unblock the reader without tearing the socket down yet.
		s.conn.SetReadDeadline(time.Now())
		s.readerWG.Wait()
		s.workerWG.Wait()
		s.closeErr = s.conn.Close()
	})
	return s.closeErr
}

// UDPLink is the driver side of a UDP transport.
type UDPLink struct {
	conn *net.UDPConn
}

// DialUDP connects to a UDPSwitch.
func DialUDP(addr string) (*UDPLink, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("driver: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("driver: dial: %w", err)
	}
	return &UDPLink{conn: conn}, nil
}

// Send implements Link.
func (l *UDPLink) Send(entry int, wire []byte) error {
	if entry < 0 || entry > 255 {
		return fmt.Errorf("driver: entry %d out of range", entry)
	}
	buf := append([]byte{byte(entry)}, wire...)
	_, err := l.conn.Write(buf)
	return err
}

// Recv implements Link.
func (l *UDPLink) Recv(timeout time.Duration) ([]byte, bool, error) {
	buf := make([]byte, 65536)
	n, ok, err := l.RecvInto(buf, timeout)
	if err != nil || !ok {
		return nil, ok, err
	}
	return append([]byte(nil), buf[:n]...), true, nil
}

// RecvInto implements FastRecvLink: the socket read lands directly in the
// caller's buffer.
func (l *UDPLink) RecvInto(buf []byte, timeout time.Duration) (int, bool, error) {
	if err := l.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return 0, false, err
	}
	n, err := l.conn.Read(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return 0, false, nil
		}
		return 0, false, err
	}
	return n, true, nil
}

// Close implements Link.
func (l *UDPLink) Close() error { return l.conn.Close() }
