// Package driver implements Meissa's test driver (§4 of the paper): a
// sender that concretizes test case templates into packets, a receiver
// that captures the target's output, and a checker that validates
// checksums, relates packets by their unique payload IDs, compares the
// actual output against the symbolic prediction, and evaluates the
// developer's intent (spec) — reporting passed and failed test cases.
package driver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/switchsim"
)

// Link transports test packets to a switch under test and captures its
// output. Implementations: Loopback (in-process) and UDPLink (real
// sockets to a UDPSwitch, mirroring a lab harness port).
type Link interface {
	// Send injects a wire packet at the given entry point.
	Send(entry int, wire []byte) error
	// Recv captures one output packet, waiting up to timeout. ok=false
	// means nothing was captured (the packet was dropped or lost).
	Recv(timeout time.Duration) (wire []byte, ok bool, err error)
	// Close releases the link.
	Close() error
}

// Loopback connects the driver directly to an in-process target.
type Loopback struct {
	target *switchsim.Target
	mu     sync.Mutex
	queue  [][]byte
	// Traces accumulates the target execution traces per injected packet,
	// for bug localization.
	traces []*switchsim.Result
}

// NewLoopback returns a loopback link to the target.
func NewLoopback(t *switchsim.Target) *Loopback { return &Loopback{target: t} }

// Send implements Link.
func (l *Loopback) Send(entry int, wire []byte) error {
	res, err := l.target.Inject(entry, wire)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.traces = append(l.traces, res)
	if res.Output != nil {
		data, err := res.Output.Marshal(l.target.Program())
		if err != nil {
			return err
		}
		l.queue = append(l.queue, data)
	}
	return nil
}

// Recv implements Link.
func (l *Loopback) Recv(timeout time.Duration) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) == 0 {
		return nil, false, nil
	}
	out := l.queue[0]
	l.queue = l.queue[1:]
	return out, true, nil
}

// LastTrace returns the most recent target execution trace.
func (l *Loopback) LastTrace() *switchsim.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.traces) == 0 {
		return nil
	}
	return l.traces[len(l.traces)-1]
}

// Close implements Link.
func (l *Loopback) Close() error { return nil }

// --- UDP transport ---

// UDPSwitch serves a target over UDP: each datagram is
// [1-byte entry index | wire packet]; outputs are sent back to the
// sender's address. It emulates attaching the test harness to switch
// front-panel ports.
type UDPSwitch struct {
	target *switchsim.Target
	conn   *net.UDPConn
	wg     sync.WaitGroup
	closed chan struct{}
}

// ServeUDP starts a UDP switch on addr (e.g. "127.0.0.1:0") and returns
// it; Addr reports the bound address.
func ServeUDP(target *switchsim.Target, addr string) (*UDPSwitch, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("driver: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("driver: listen: %w", err)
	}
	s := &UDPSwitch{target: target, conn: conn, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the switch's bound UDP address.
func (s *UDPSwitch) Addr() string { return s.conn.LocalAddr().String() }

func (s *UDPSwitch) serve() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		if n < 1 {
			continue
		}
		entry := int(buf[0])
		wire := append([]byte(nil), buf[1:n]...)
		res, err := s.target.Inject(entry, wire)
		if err != nil || res.Output == nil {
			continue // dropped: nothing comes back, like real hardware
		}
		data, err := res.Output.Marshal(s.target.Program())
		if err != nil {
			continue
		}
		if _, err := s.conn.WriteToUDP(data, peer); err != nil {
			continue
		}
	}
}

// Close shuts the switch down.
func (s *UDPSwitch) Close() error {
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// UDPLink is the driver side of a UDP transport.
type UDPLink struct {
	conn *net.UDPConn
}

// DialUDP connects to a UDPSwitch.
func DialUDP(addr string) (*UDPLink, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("driver: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("driver: dial: %w", err)
	}
	return &UDPLink{conn: conn}, nil
}

// Send implements Link.
func (l *UDPLink) Send(entry int, wire []byte) error {
	if entry < 0 || entry > 255 {
		return fmt.Errorf("driver: entry %d out of range", entry)
	}
	buf := append([]byte{byte(entry)}, wire...)
	_, err := l.conn.Write(buf)
	return err
}

// Recv implements Link.
func (l *UDPLink) Recv(timeout time.Duration) ([]byte, bool, error) {
	if err := l.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, false, err
	}
	buf := make([]byte, 65536)
	n, err := l.conn.Read(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, false, nil
		}
		return nil, false, err
	}
	return append([]byte(nil), buf[:n]...), true, nil
}

// Close implements Link.
func (l *UDPLink) Close() error { return l.conn.Close() }
