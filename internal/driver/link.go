// Package driver implements Meissa's test driver (§4 of the paper): a
// sender that concretizes test case templates into packets, a receiver
// that captures the target's output, and a checker that validates
// checksums, relates packets by their unique payload IDs, compares the
// actual output against the symbolic prediction, and evaluates the
// developer's intent (spec) — reporting passed and failed test cases.
package driver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/switchsim"
)

// Link transports test packets to a switch under test and captures its
// output. Implementations: Loopback (in-process) and UDPLink (real
// sockets to a UDPSwitch, mirroring a lab harness port).
type Link interface {
	// Send injects a wire packet at the given entry point.
	Send(entry int, wire []byte) error
	// Recv captures one output packet, waiting up to timeout. ok=false
	// means nothing was captured (the packet was dropped or lost).
	Recv(timeout time.Duration) (wire []byte, ok bool, err error)
	// Close releases the link.
	Close() error
}

// Loopback connects the driver directly to an in-process target.
type Loopback struct {
	target *switchsim.Target
	mu     sync.Mutex
	queue  [][]byte
	// Traces accumulates the target execution traces per injected packet,
	// for bug localization.
	traces []*switchsim.Result
}

// NewLoopback returns a loopback link to the target.
func NewLoopback(t *switchsim.Target) *Loopback { return &Loopback{target: t} }

// Send implements Link.
func (l *Loopback) Send(entry int, wire []byte) error {
	res, err := l.target.Inject(entry, wire)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.traces = append(l.traces, res)
	if res.Output != nil {
		data, err := res.Output.Marshal(l.target.Program())
		if err != nil {
			return err
		}
		l.queue = append(l.queue, data)
	}
	return nil
}

// Recv implements Link.
func (l *Loopback) Recv(timeout time.Duration) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) == 0 {
		return nil, false, nil
	}
	out := l.queue[0]
	l.queue = l.queue[1:]
	return out, true, nil
}

// LastTrace returns the most recent target execution trace.
func (l *Loopback) LastTrace() *switchsim.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.traces) == 0 {
		return nil
	}
	return l.traces[len(l.traces)-1]
}

// Close implements Link.
func (l *Loopback) Close() error { return nil }

// --- UDP transport ---

// UDPSwitch serves a target over UDP: each datagram is
// [1-byte entry index | wire packet]; outputs are sent back to the
// sender's address. It emulates attaching the test harness to switch
// front-panel ports.
//
// The switch is hardened against a hostile harness: a per-packet panic in
// the target is recovered and counted as a crash rather than killing the
// serve loop, transient socket errors are counted and served through, and
// concurrent packet handling is bounded by a fixed worker pool with an
// overload queue that sheds excess load (counted as drops, like real
// hardware back-pressure). Close drains queued packets before releasing
// the socket.
type UDPSwitch struct {
	target *switchsim.Target
	conn   *net.UDPConn
	// readerWG tracks the socket reader; workerWG the handler pool.
	readerWG sync.WaitGroup
	workerWG sync.WaitGroup
	work     chan datagram
	closed   chan struct{}
	once     sync.Once
	closeErr error

	// injectMu serializes target execution: the simulated pipeline holds
	// persistent register state and is not reentrant.
	injectMu sync.Mutex

	mu      sync.Mutex
	crashes uint64
	dropped uint64
	errs    uint64
}

type datagram struct {
	entry int
	wire  []byte
	peer  *net.UDPAddr
}

// udpWorkers bounds concurrent packet handling; udpBacklog bounds queued
// datagrams beyond which the switch sheds load.
const (
	udpWorkers = 4
	udpBacklog = 256
)

// ServeUDP starts a UDP switch on addr (e.g. "127.0.0.1:0") and returns
// it; Addr reports the bound address.
func ServeUDP(target *switchsim.Target, addr string) (*UDPSwitch, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("driver: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("driver: listen: %w", err)
	}
	s := &UDPSwitch{
		target: target,
		conn:   conn,
		work:   make(chan datagram, udpBacklog),
		closed: make(chan struct{}),
	}
	s.readerWG.Add(1)
	go s.read()
	for i := 0; i < udpWorkers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for d := range s.work {
				s.handle(d)
			}
		}()
	}
	return s, nil
}

// Addr returns the switch's bound UDP address.
func (s *UDPSwitch) Addr() string { return s.conn.LocalAddr().String() }

// Crashes counts packets whose processing panicked in the target.
func (s *UDPSwitch) Crashes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes
}

// Dropped counts packets that produced no reply: data-plane drops,
// malformed datagrams, and load shed by the bounded queue.
func (s *UDPSwitch) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Errors counts inject, marshal, read and write errors absorbed while
// serving.
func (s *UDPSwitch) Errors() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errs
}

func (s *UDPSwitch) count(c *uint64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// read pulls datagrams off the socket into the bounded work queue. It
// never exits on a transient error — only on Close (or the socket dying
// underneath it), after which it closes the queue so workers drain.
func (s *UDPSwitch) read() {
	defer s.readerWG.Done()
	defer close(s.work)
	buf := make([]byte, 65536)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Transient socket error: count it and keep serving.
			s.count(&s.errs)
			continue
		}
		if n < 1 {
			s.count(&s.dropped)
			continue
		}
		d := datagram{entry: int(buf[0]), wire: append([]byte(nil), buf[1:n]...), peer: peer}
		select {
		case s.work <- d:
		default:
			// Queue full: shed load like an oversubscribed ingress port.
			s.count(&s.dropped)
		}
	}
}

// handle processes one datagram: inject, marshal, reply. Target panics
// are recovered (twice over: Inject recovers its own, and this guards the
// worker against everything else) and counted as crashes.
func (s *UDPSwitch) handle(d datagram) {
	res, err := func() (res *switchsim.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("driver: packet handler panicked: %v", r)
				s.count(&s.crashes)
			}
		}()
		s.injectMu.Lock()
		defer s.injectMu.Unlock()
		return s.target.Inject(d.entry, d.wire)
	}()
	if err != nil {
		var ce *switchsim.CrashError
		if errors.As(err, &ce) {
			s.count(&s.crashes)
		} else {
			s.count(&s.errs)
		}
		return
	}
	if res.Output == nil {
		s.count(&s.dropped) // dropped: nothing comes back, like real hardware
		return
	}
	data, err := res.Output.Marshal(s.target.Program())
	if err != nil {
		s.count(&s.errs)
		return
	}
	if _, err := s.conn.WriteToUDP(data, d.peer); err != nil {
		s.count(&s.errs)
	}
}

// Close shuts the switch down gracefully: it stops the reader, lets the
// workers drain every queued packet (replies still flush over the open
// socket), then releases the socket. Safe to call more than once.
func (s *UDPSwitch) Close() error {
	s.once.Do(func() {
		close(s.closed)
		// Unblock the reader without tearing the socket down yet.
		s.conn.SetReadDeadline(time.Now())
		s.readerWG.Wait()
		s.workerWG.Wait()
		s.closeErr = s.conn.Close()
	})
	return s.closeErr
}

// UDPLink is the driver side of a UDP transport.
type UDPLink struct {
	conn *net.UDPConn
}

// DialUDP connects to a UDPSwitch.
func DialUDP(addr string) (*UDPLink, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("driver: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("driver: dial: %w", err)
	}
	return &UDPLink{conn: conn}, nil
}

// Send implements Link.
func (l *UDPLink) Send(entry int, wire []byte) error {
	if entry < 0 || entry > 255 {
		return fmt.Errorf("driver: entry %d out of range", entry)
	}
	buf := append([]byte{byte(entry)}, wire...)
	_, err := l.conn.Write(buf)
	return err
}

// Recv implements Link.
func (l *UDPLink) Recv(timeout time.Duration) ([]byte, bool, error) {
	if err := l.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, false, err
	}
	buf := make([]byte, 65536)
	n, err := l.conn.Read(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, false, nil
		}
		return nil, false, err
	}
	return append([]byte(nil), buf[:n]...), true, nil
}

// Close implements Link.
func (l *UDPLink) Close() error { return l.conn.Close() }
