// Package packet models concrete test packets: bit-exact serialization of
// program-declared headers, parser-FSM-driven synthesis from solver models
// and decoding of captured output, plus the unique-ID payload the test
// driver uses to relate sent and received packets (§4 of the paper).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/p4"
)

// Magic marks Meissa test packets' payloads.
const Magic uint32 = 0x4D455353 // "MESS"

// Header is one concrete header instance in wire order.
type Header struct {
	Name   string
	Fields map[string]uint64
}

// Packet is a concrete packet: headers in wire order plus payload.
type Packet struct {
	Headers []Header
	Payload []byte
}

// Clone deep-copies the packet.
func (p *Packet) Clone() *Packet {
	out := &Packet{Payload: append([]byte(nil), p.Payload...)}
	for _, h := range p.Headers {
		nh := Header{Name: h.Name, Fields: make(map[string]uint64, len(h.Fields))}
		for k, v := range h.Fields {
			nh.Fields[k] = v
		}
		out.Headers = append(out.Headers, nh)
	}
	return out
}

// Has reports whether a header is present.
func (p *Packet) Has(name string) bool {
	for _, h := range p.Headers {
		if h.Name == name {
			return true
		}
	}
	return false
}

// Field returns a header field value.
func (p *Packet) Field(header, field string) (uint64, bool) {
	for _, h := range p.Headers {
		if h.Name == header {
			v, ok := h.Fields[field]
			return v, ok
		}
	}
	return 0, false
}

// SetField sets a header field value, adding the header if absent.
func (p *Packet) SetField(header, field string, v uint64) {
	for i := range p.Headers {
		if p.Headers[i].Name == header {
			p.Headers[i].Fields[field] = v
			return
		}
	}
	p.Headers = append(p.Headers, Header{Name: header, Fields: map[string]uint64{field: v}})
}

// ID extracts the unique test-packet ID from the payload, if present.
func (p *Packet) ID() (uint64, bool) {
	if len(p.Payload) < 12 {
		return 0, false
	}
	if binary.BigEndian.Uint32(p.Payload[:4]) != Magic {
		return 0, false
	}
	return binary.BigEndian.Uint64(p.Payload[4:12]), true
}

// WithID returns a 12-byte payload carrying the magic and the ID.
func WithID(id uint64) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint32(buf[:4], Magic)
	binary.BigEndian.PutUint64(buf[4:12], id)
	return buf
}

// String renders the packet compactly.
func (p *Packet) String() string {
	var b strings.Builder
	for i, h := range p.Headers {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(h.Name)
	}
	if id, ok := p.ID(); ok {
		fmt.Fprintf(&b, "#%d", id)
	}
	return b.String()
}

// --- Bit-level wire format ---

// bitWriter packs values MSB-first.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) write(v uint64, bits int) {
	need := (w.nbit + bits + 7) / 8
	for len(w.buf) < need {
		w.buf = append(w.buf, 0)
	}
	n := w.nbit
	// Head: finish the current partial byte bit by bit.
	for bits > 0 && n%8 != 0 {
		bit := (v >> uint(bits-1)) & 1
		w.buf[n/8] |= byte(bit) << uint(7-n%8)
		n++
		bits--
	}
	// Body: whole bytes at a time.
	for bits >= 8 {
		w.buf[n/8] = byte(v >> uint(bits-8))
		n += 8
		bits -= 8
	}
	// Tail: the remaining high bits of v.
	for bits > 0 {
		bit := (v >> uint(bits-1)) & 1
		w.buf[n/8] |= byte(bit) << uint(7-n%8)
		n++
		bits--
	}
	w.nbit = n
}

// bitReader unpacks values MSB-first.
type bitReader struct {
	buf  []byte
	nbit int
}

func (r *bitReader) read(bits int) (uint64, error) {
	if total := len(r.buf) * 8; r.nbit+bits > total {
		// Report the first bit that falls off the buffer, as the
		// bit-by-bit loop did.
		at := r.nbit
		if total > at {
			at = total
		}
		return 0, fmt.Errorf("packet: truncated at bit %d", at)
	}
	var v uint64
	n := r.nbit
	// Head: drain the current partial byte bit by bit.
	for bits > 0 && n%8 != 0 {
		bit := (r.buf[n/8] >> uint(7-n%8)) & 1
		v = v<<1 | uint64(bit)
		n++
		bits--
	}
	// Body: whole bytes at a time.
	for bits >= 8 {
		v = v<<8 | uint64(r.buf[n/8])
		n += 8
		bits -= 8
	}
	// Tail.
	for bits > 0 {
		bit := (r.buf[n/8] >> uint(7-n%8)) & 1
		v = v<<1 | uint64(bit)
		n++
		bits--
	}
	r.nbit = n
	return v, nil
}

func (r *bitReader) rest() []byte {
	// Round up to the next byte boundary; headers are byte-aligned in all
	// corpus programs, so this loses nothing in practice.
	start := (r.nbit + 7) / 8
	if start >= len(r.buf) {
		return nil
	}
	return r.buf[start:]
}

// Marshal serializes the packet: headers in their recorded order, each
// field MSB-first in declaration order, then the payload.
func (p *Packet) Marshal(prog *p4.Program) ([]byte, error) {
	w := &bitWriter{}
	for _, h := range p.Headers {
		decl := prog.Header(h.Name)
		if decl == nil {
			return nil, fmt.Errorf("packet: unknown header %q", h.Name)
		}
		for _, f := range decl.Fields {
			w.write(expr.Width(f.Width).Trunc(h.Fields[f.Name]), f.Width)
		}
	}
	if w.nbit%8 != 0 {
		return nil, fmt.Errorf("packet: headers not byte-aligned (%d bits)", w.nbit)
	}
	return append(w.buf, p.Payload...), nil
}

// MarshalState serializes an execution state straight to wire bytes:
// every header whose validity bit is set, in program declaration order
// (the implicit deparser), fields MSB-first in declaration order, then
// the payload. It is exactly Marshal∘FromState without the intermediate
// Packet — the links' quiet line-rate paths use it because they retain
// only the bytes.
func MarshalState(prog *p4.Program, st expr.State, payload []byte) ([]byte, error) {
	vt := p4.Vars(prog)
	bits := 0
	for _, hd := range prog.Headers {
		if st[vt.Valid(hd.Name)] != 1 {
			continue
		}
		for _, f := range hd.Fields {
			bits += f.Width
		}
	}
	w := bitWriter{buf: make([]byte, 0, (bits+7)/8+len(payload))}
	for _, hd := range prog.Headers {
		if st[vt.Valid(hd.Name)] != 1 {
			continue
		}
		for _, f := range hd.Fields {
			w.write(expr.Width(f.Width).Trunc(st[vt.Field(hd.Name, f.Name)]), f.Width)
		}
	}
	if w.nbit%8 != 0 {
		return nil, fmt.Errorf("packet: headers not byte-aligned (%d bits)", w.nbit)
	}
	return append(w.buf, payload...), nil
}

// Parse decodes a wire packet by running a parser state machine
// concretely: extract reads header fields off the wire, select dispatches
// on the decoded values. It returns the decoded packet and the set of
// extracted headers, or an error if the parser rejects.
func Parse(prog *p4.Program, parserName string, wire []byte) (*Packet, error) {
	pd := prog.Parser(parserName)
	if pd == nil {
		return nil, fmt.Errorf("packet: unknown parser %q", parserName)
	}
	r := &bitReader{buf: wire}
	pkt := &Packet{}
	state := "start"
	for steps := 0; steps < 1000; steps++ {
		switch state {
		case "accept":
			pkt.Payload = append([]byte(nil), r.rest()...)
			return pkt, nil
		case "reject":
			return nil, fmt.Errorf("packet: parser rejected")
		}
		st := pd.State(state)
		if st == nil {
			return nil, fmt.Errorf("packet: parser state %q missing", state)
		}
		for _, s := range st.Body {
			ex, ok := s.(*p4.ExtractStmt)
			if !ok {
				continue // parser assignments touch metadata, not the wire
			}
			decl := prog.Header(ex.Header)
			h := Header{Name: ex.Header, Fields: make(map[string]uint64, len(decl.Fields))}
			for _, f := range decl.Fields {
				v, err := r.read(f.Width)
				if err != nil {
					return nil, fmt.Errorf("packet: extracting %s.%s: %w", ex.Header, f.Name, err)
				}
				h.Fields[f.Name] = v
			}
			pkt.Headers = append(pkt.Headers, h)
		}
		tr := st.Transition
		if len(tr.Select) == 0 {
			state = tr.Default
			continue
		}
		vals := make([]uint64, len(tr.Select))
		for i, ref := range tr.Select {
			v, ok := refValue(pkt, ref)
			if !ok {
				return nil, fmt.Errorf("packet: select on unextracted field %s", ref)
			}
			vals[i] = v
		}
		next := tr.Default
		for _, c := range tr.Cases {
			match := true
			for i := range vals {
				if vals[i] != c.Values[i] {
					match = false
					break
				}
			}
			if match {
				next = c.Next
				break
			}
		}
		state = next
	}
	return nil, fmt.Errorf("packet: parser did not terminate")
}

func refValue(pkt *Packet, ref *p4.FieldRef) (uint64, bool) {
	if len(ref.Parts) != 2 {
		return 0, false
	}
	return pkt.Field(ref.Parts[0], ref.Parts[1])
}

// ErrReExtract reports that a parser extracted the same header twice.
// ParseInto cannot represent two instances of one header in a flat
// state, so it bails out and the caller falls back to Parse.
var ErrReExtract = errors.New("packet: header re-extracted")

// ParseInto is the allocation-free variant of Parse for hot paths that
// only need the fields loaded into an execution state: extracted values
// are written directly into st via the program's interned variables, and
// no intermediate Packet is built. It appends extracted header names to
// names and non-terminal visited state names to visited (pass reused
// scratch slices) and returns the payload ALIASING wire — the caller
// copies if it retains it. On ErrReExtract the caller must redo the work
// with Parse; st may hold partial loads, which Parse callers overwrite.
func ParseInto(prog *p4.Program, parserName string, wire []byte, st expr.State, names, visited []string) ([]string, []string, []byte, error) {
	pd := prog.Parser(parserName)
	if pd == nil {
		return names, visited, nil, fmt.Errorf("packet: unknown parser %q", parserName)
	}
	vt := p4.Vars(prog)
	r := bitReader{buf: wire}
	state := "start"
	var valsArr [4]uint64
	for steps := 0; steps < 1000; steps++ {
		switch state {
		case "accept":
			return names, visited, r.rest(), nil
		case "reject":
			return names, visited, nil, fmt.Errorf("packet: parser rejected")
		}
		sd := pd.State(state)
		if sd == nil {
			return names, visited, nil, fmt.Errorf("packet: parser state %q missing", state)
		}
		visited = append(visited, state)
		for _, s := range sd.Body {
			ex, ok := s.(*p4.ExtractStmt)
			if !ok {
				continue // parser assignments touch metadata, not the wire
			}
			for _, n := range names {
				if n == ex.Header {
					return names, visited, nil, ErrReExtract
				}
			}
			decl := prog.Header(ex.Header)
			for _, f := range decl.Fields {
				v, err := r.read(f.Width)
				if err != nil {
					return names, visited, nil, fmt.Errorf("packet: extracting %s.%s: %w", ex.Header, f.Name, err)
				}
				st[vt.Field(ex.Header, f.Name)] = v
			}
			names = append(names, ex.Header)
		}
		tr := sd.Transition
		if len(tr.Select) == 0 {
			state = tr.Default
			continue
		}
		vals := valsArr[:0]
		for _, ref := range tr.Select {
			v, ok := stateRefValue(vt, st, names, ref)
			if !ok {
				return names, visited, nil, fmt.Errorf("packet: select on unextracted field %s", ref)
			}
			vals = append(vals, v)
		}
		next := tr.Default
		for _, c := range tr.Cases {
			match := true
			for i := range vals {
				if vals[i] != c.Values[i] {
					match = false
					break
				}
			}
			if match {
				next = c.Next
				break
			}
		}
		state = next
	}
	return names, visited, nil, fmt.Errorf("packet: parser did not terminate")
}

// stateRefValue mirrors Packet.Field against a flat state: the header
// must have been extracted and the field declared.
func stateRefValue(vt *p4.VarTable, st expr.State, names []string, ref *p4.FieldRef) (uint64, bool) {
	if len(ref.Parts) != 2 {
		return 0, false
	}
	extracted := false
	for _, n := range names {
		if n == ref.Parts[0] {
			extracted = true
			break
		}
	}
	if !extracted {
		return 0, false
	}
	v, ok := vt.FieldOK(ref.Parts[0], ref.Parts[1])
	if !ok {
		return 0, false
	}
	return st[v], true
}

// Synthesize builds a concrete input packet from a solver model: it walks
// the parser FSM using model values to decide transitions, including
// exactly the headers the path's parse requires, and fills every field
// from the model (absent fields default to zero).
func Synthesize(prog *p4.Program, parserName string, model expr.State, id uint64) (*Packet, error) {
	pd := prog.Parser(parserName)
	if pd == nil {
		return nil, fmt.Errorf("packet: unknown parser %q", parserName)
	}
	pkt := &Packet{Payload: WithID(id)}
	state := "start"
	for steps := 0; steps < 1000; steps++ {
		if state == "accept" {
			return pkt, nil
		}
		if state == "reject" {
			// A path that rejects still needs an input packet; the wire
			// form is whatever was synthesized so far.
			return pkt, nil
		}
		st := pd.State(state)
		if st == nil {
			return nil, fmt.Errorf("packet: parser state %q missing", state)
		}
		for _, s := range st.Body {
			ex, ok := s.(*p4.ExtractStmt)
			if !ok {
				continue
			}
			decl := prog.Header(ex.Header)
			vt := p4.Vars(prog)
			h := Header{Name: ex.Header, Fields: make(map[string]uint64, len(decl.Fields))}
			for _, f := range decl.Fields {
				h.Fields[f.Name] = model[vt.Field(ex.Header, f.Name)]
			}
			pkt.Headers = append(pkt.Headers, h)
		}
		tr := st.Transition
		if len(tr.Select) == 0 {
			state = tr.Default
			continue
		}
		next := tr.Default
		for _, c := range tr.Cases {
			match := true
			for i, ref := range tr.Select {
				v, ok := refValue(pkt, ref)
				if !ok || v != c.Values[i] {
					match = false
					break
				}
			}
			if match {
				next = c.Next
				break
			}
		}
		state = next
	}
	return nil, fmt.Errorf("packet: parser did not terminate")
}

// FromState builds an output packet from an execution state: every header
// whose validity bit is set, in program declaration order (the implicit
// deparser), fields taken from the state.
func FromState(prog *p4.Program, st expr.State, payload []byte) *Packet {
	vt := p4.Vars(prog)
	pkt := &Packet{Payload: append([]byte(nil), payload...)}
	for _, hd := range prog.Headers {
		if st[vt.Valid(hd.Name)] != 1 {
			continue
		}
		h := Header{Name: hd.Name, Fields: make(map[string]uint64, len(hd.Fields))}
		for _, f := range hd.Fields {
			h.Fields[f.Name] = expr.Width(f.Width).Trunc(st[vt.Field(hd.Name, f.Name)])
		}
		pkt.Headers = append(pkt.Headers, h)
	}
	return pkt
}

// ToState loads a packet into an execution state: field values and
// validity bits for present headers.
func (p *Packet) ToState(st expr.State) {
	for _, h := range p.Headers {
		st[p4.ValidVar(h.Name)] = 1
		for f, v := range h.Fields {
			st[p4.HeaderFieldVar(h.Name, f)] = v
		}
	}
}
