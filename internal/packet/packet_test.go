package packet

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/p4"
)

const testProg = `
header ethernet {
  bit<48> dstAddr;
  bit<48> srcAddr;
  bit<16> etherType;
}
header ipv4 {
  bit<8>  ttl;
  bit<8>  protocol;
  bit<16> checksum;
  bit<32> srcAddr;
  bit<32> dstAddr;
}
header tcp {
  bit<16> srcPort;
  bit<16> dstPort;
}
parser prs {
  state start {
    extract(ethernet);
    transition select(ethernet.etherType) {
      0x0800: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 {
    extract(ipv4);
    transition select(ipv4.protocol) {
      6: parse_tcp;
      default: accept;
    }
  }
  state parse_tcp { extract(tcp); transition accept; }
}
control c { apply { } }
pipeline p { parser = prs; control = c; }
`

func prog(t *testing.T) *p4.Program {
	t.Helper()
	pr := p4.MustParse(testProg)
	if err := p4.Check(pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestMarshalParseRoundTrip(t *testing.T) {
	pr := prog(t)
	in := &Packet{
		Headers: []Header{
			{Name: "ethernet", Fields: map[string]uint64{"dstAddr": 0x0A0B0C0D0E0F, "srcAddr": 0x111213141516, "etherType": 0x0800}},
			{Name: "ipv4", Fields: map[string]uint64{"ttl": 64, "protocol": 6, "checksum": 0xBEEF, "srcAddr": 0xC0A80001, "dstAddr": 0x0A000001}},
			{Name: "tcp", Fields: map[string]uint64{"srcPort": 12345, "dstPort": 80}},
		},
		Payload: WithID(42),
	}
	wire, err := in.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Ethernet 14 + IPv4 12 + TCP 4 + payload 12 bytes.
	if len(wire) != 14+12+4+12 {
		t.Fatalf("wire length = %d", len(wire))
	}
	out, err := Parse(pr, "prs", wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Headers) != 3 {
		t.Fatalf("parsed %d headers, want 3", len(out.Headers))
	}
	for _, h := range in.Headers {
		for f, v := range h.Fields {
			got, ok := out.Field(h.Name, f)
			if !ok || got != v {
				t.Errorf("%s.%s = %d, want %d", h.Name, f, got, v)
			}
		}
	}
	id, ok := out.ID()
	if !ok || id != 42 {
		t.Errorf("ID = %d, %v", id, ok)
	}
}

func TestParseStopsAtNonMatchingSelect(t *testing.T) {
	pr := prog(t)
	in := &Packet{
		Headers: []Header{
			{Name: "ethernet", Fields: map[string]uint64{"etherType": 0x86dd}},
		},
		Payload: WithID(7),
	}
	wire, err := in.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(pr, "prs", wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Headers) != 1 {
		t.Fatalf("parsed %d headers, want 1", len(out.Headers))
	}
	if id, ok := out.ID(); !ok || id != 7 {
		t.Errorf("payload ID lost: %d %v", id, ok)
	}
}

func TestParseTruncated(t *testing.T) {
	pr := prog(t)
	in := &Packet{
		Headers: []Header{{Name: "ethernet", Fields: map[string]uint64{"etherType": 0x0800}}},
	}
	wire, _ := in.Marshal(pr)
	// Ethernet claims IPv4 follows but the wire ends.
	if _, err := Parse(pr, "prs", wire); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestSynthesizeFollowsModel(t *testing.T) {
	pr := prog(t)
	model := expr.State{
		"hdr.ethernet.etherType": 0x0800,
		"hdr.ipv4.protocol":      6,
		"hdr.ipv4.dstAddr":       0x0A000001,
		"hdr.tcp.dstPort":        443,
	}
	pkt, err := Synthesize(pr, "prs", model, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !pkt.Has("ethernet") || !pkt.Has("ipv4") || !pkt.Has("tcp") {
		t.Fatalf("synthesized headers: %s", pkt)
	}
	if v, _ := pkt.Field("tcp", "dstPort"); v != 443 {
		t.Errorf("tcp.dstPort = %d", v)
	}
	if id, ok := pkt.ID(); !ok || id != 9 {
		t.Errorf("ID = %d %v", id, ok)
	}
}

func TestSynthesizeNonIPv4(t *testing.T) {
	pr := prog(t)
	pkt, err := Synthesize(pr, "prs", expr.State{"hdr.ethernet.etherType": 0x1234}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Has("ipv4") || pkt.Has("tcp") {
		t.Errorf("non-IPv4 packet got IP headers: %s", pkt)
	}
}

func TestBitPackingRoundTrip(t *testing.T) {
	f := func(a uint16, b uint8, c uint32) bool {
		w := &bitWriter{}
		w.write(uint64(a)&0x1ff, 9) // 9-bit
		w.write(uint64(b)&0x7, 3)   // 3-bit
		w.write(uint64(c)&0xfffff, 20)
		// Pad to byte boundary.
		w.write(0, 8-(9+3+20)%8)
		r := &bitReader{buf: w.buf}
		ra, _ := r.read(9)
		rb, _ := r.read(3)
		rc, _ := r.read(20)
		return ra == uint64(a)&0x1ff && rb == uint64(b)&0x7 && rc == uint64(c)&0xfffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromStateEmitsValidHeadersInOrder(t *testing.T) {
	pr := prog(t)
	st := expr.State{
		"valid$ethernet":         1,
		"valid$tcp":              1,
		"hdr.ethernet.etherType": 0x0800,
		"hdr.tcp.srcPort":        99,
	}
	pkt := FromState(pr, st, WithID(3))
	if len(pkt.Headers) != 2 {
		t.Fatalf("headers = %d, want 2", len(pkt.Headers))
	}
	if pkt.Headers[0].Name != "ethernet" || pkt.Headers[1].Name != "tcp" {
		t.Errorf("order: %s", pkt)
	}
}

func TestToState(t *testing.T) {
	pkt := &Packet{Headers: []Header{{Name: "tcp", Fields: map[string]uint64{"srcPort": 7}}}}
	st := expr.State{}
	pkt.ToState(st)
	if st["valid$tcp"] != 1 || st["hdr.tcp.srcPort"] != 7 {
		t.Errorf("state = %v", st)
	}
}

func TestIDHelpers(t *testing.T) {
	p := &Packet{Payload: WithID(123456)}
	id, ok := p.ID()
	if !ok || id != 123456 {
		t.Fatalf("ID = %d %v", id, ok)
	}
	if _, ok := (&Packet{Payload: []byte{1, 2}}).ID(); ok {
		t.Error("short payload must not yield an ID")
	}
	if _, ok := (&Packet{Payload: make([]byte, 16)}).ID(); ok {
		t.Error("payload without magic must not yield an ID")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Packet{Headers: []Header{{Name: "x", Fields: map[string]uint64{"f": 1}}}, Payload: []byte{1}}
	c := p.Clone()
	c.Headers[0].Fields["f"] = 2
	c.Payload[0] = 9
	if p.Headers[0].Fields["f"] != 1 || p.Payload[0] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestSetField(t *testing.T) {
	p := &Packet{}
	p.SetField("ipv4", "ttl", 64)
	p.SetField("ipv4", "ttl", 63)
	if v, ok := p.Field("ipv4", "ttl"); !ok || v != 63 {
		t.Errorf("ttl = %d %v", v, ok)
	}
	if len(p.Headers) != 1 {
		t.Errorf("headers = %d", len(p.Headers))
	}
}
