package baselines

import (
	"errors"
	"testing"
	"time"

	"repro/internal/programs"
)

const budget = 60 * time.Second

func TestP4PktgenSupportsOpenPrograms(t *testing.T) {
	p := programs.Router()
	stats, templates, err := P4Pktgen{}.Generate(p.Prog, p.Rules, budget)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Templates == 0 || len(templates) == 0 {
		t.Fatal("no templates")
	}
	if stats.SMTCalls == 0 {
		t.Error("expected solver activity")
	}
}

func TestP4PktgenRejectsProduction(t *testing.T) {
	p := programs.GW(1, programs.Set1)
	_, _, err := P4Pktgen{}.Generate(p.Prog, p.Rules, budget)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestP4PktgenRejectsMultiPipeline(t *testing.T) {
	p := programs.GW(2, programs.Set1)
	_, _, err := P4Pktgen{}.Generate(p.Prog, p.Rules, budget)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestGauntletSupportsOpenPrograms(t *testing.T) {
	p := programs.MTag()
	stats, templates, err := Gauntlet{}.Generate(p.Prog, p.Rules, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(templates) == 0 {
		t.Fatal("no templates")
	}
	_ = stats
}

func TestGauntletRejectsProduction(t *testing.T) {
	p := programs.GW(3, programs.Set1)
	_, _, err := Gauntlet{}.Generate(p.Prog, p.Rules, budget)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestGauntletCoverageMatchesP4Pktgen(t *testing.T) {
	// Both enumerate all valid paths; they must agree on the count even
	// though Gauntlet skips early termination.
	p := programs.ACL()
	_, t1, err := P4Pktgen{}.Generate(p.Prog, p.Rules, budget)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := Gauntlet{}.Generate(p.Prog, p.Rules, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Errorf("coverage differs: %d vs %d", len(t1), len(t2))
	}
}

func TestAquilaVerifiesSmallProgram(t *testing.T) {
	p := programs.Router()
	stats, _, err := Aquila{}.Verify(p.Prog, p.Rules, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Verification discharges per-statement VCs: strictly more solver
	// calls than plain generation.
	genStats, _, err := P4Pktgen{}.Generate(p.Prog, p.Rules, budget)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SMTCalls <= genStats.SMTCalls {
		t.Errorf("Aquila's VC discharge should exceed generation solver calls: %d vs %d",
			stats.SMTCalls, genStats.SMTCalls)
	}
}

func TestAquilaTimesOutOnTinyBudget(t *testing.T) {
	p := programs.GW(3, programs.Set2)
	_, _, err := Aquila{}.Verify(p.Prog, p.Rules, 1*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPTACannotGenerate(t *testing.T) {
	p := programs.Router()
	_, _, err := PTA{}.Generate(p.Prog, p.Rules, budget)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestNames(t *testing.T) {
	tools := []Generator{P4Pktgen{}, Gauntlet{}, Aquila{}, PTA{}}
	want := []string{"p4pktgen", "Gauntlet", "Aquila", "PTA"}
	for i, tool := range tools {
		if tool.Name() != want[i] {
			t.Errorf("tool %d name = %q, want %q", i, tool.Name(), want[i])
		}
	}
}
