// Package baselines implements the four systems the paper compares
// against (§5.1): p4pktgen, Gauntlet (model-based testing mode), Aquila
// (verification) and PTA. Each baseline reproduces the documented
// methodology and limitations of the original:
//
//   - p4pktgen [61]: whole-program symbolic execution with early
//     termination but no code summary and no incremental solving; "it also
//     does not test table rules and other production functionalities" —
//     so production programs with custom rule sets are unsupported.
//   - Gauntlet [68] model-based mode: enumerates all table rules but
//     checks satisfiability only at path ends (no early termination), no
//     incremental solving; "too rudimentary to test production-scale
//     programs" — large or custom-rules programs are unsupported.
//   - Aquila [79]: a verifier — whole-program symbolic execution that
//     discharges a verification condition at every statement (validity,
//     overflow, assertion checks), never executes the target, and runs
//     under a time budget.
//   - PTA [18]: compiles handwritten in-program assertions into packet
//     senders/checkers; it cannot generate cases itself and supports only
//     the P4-14-era feature set.
package baselines

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/p4"
	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/sym"
)

// ErrUnsupported marks a program outside a tool's supported feature set
// (the × marks of Fig. 9).
var ErrUnsupported = errors.New("baselines: program not supported by this tool")

// ErrTimeout marks exhaustion of the tool's time budget (the ◦ marks of
// Fig. 9).
var ErrTimeout = errors.New("baselines: time budget exhausted")

// GenStats reports a generation run.
type GenStats struct {
	Tool      string
	Templates int
	SMTCalls  uint64
	Duration  time.Duration
}

// Generator is a test-case generation tool (Meissa's Fig. 9 competitors).
type Generator interface {
	Name() string
	// Generate produces test case templates for the program, or
	// ErrUnsupported / ErrTimeout.
	Generate(prog *p4.Program, rs *rules.Set, budget time.Duration) (*GenStats, []*sym.Template, error)
}

// --- p4pktgen ---

// P4Pktgen is the p4pktgen-like baseline.
type P4Pktgen struct{}

// Name implements Generator.
func (P4Pktgen) Name() string { return "p4pktgen" }

// Generate implements Generator. p4pktgen supports single-pipeline open
// programs without custom table rule semantics (it synthesizes its own
// table entries); on our corpus that means rejecting multi-pipeline
// programs and programs whose behaviour depends on production rule sets.
func (P4Pktgen) Generate(prog *p4.Program, rs *rules.Set, budget time.Duration) (*GenStats, []*sym.Template, error) {
	if len(prog.Pipelines) > 1 {
		return nil, nil, fmt.Errorf("%w: multi-pipeline program", ErrUnsupported)
	}
	if isProduction(prog) {
		return nil, nil, fmt.Errorf("%w: custom table rules and production features", ErrUnsupported)
	}
	g, err := cfg.Build(prog, rs)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	res, err := sym.Explore(sym.Config{
		Graph: g,
		Options: sym.Options{
			EarlyTermination: true,
			// p4pktgen issues an independent solver query per check.
			Solver:    smt.Options{Incremental: false},
			SolverSet: true,
			// Baselines model single-threaded tools: legacy sequential DFS.
			Parallelism: 1,
			Deadline:    budget,
			WantModels:  true,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if res.Truncated {
		return nil, nil, ErrTimeout
	}
	return &GenStats{Tool: "p4pktgen", Templates: len(res.Templates), SMTCalls: res.SMT.Checks, Duration: time.Since(start)}, res.Templates, nil
}

// --- Gauntlet (model-based testing mode) ---

// Gauntlet is the Gauntlet-like baseline, modified per §5.2 "to traverse
// all possible table rules to achieve full coverage for fair comparison".
type Gauntlet struct{}

// Name implements Generator.
func (Gauntlet) Name() string { return "Gauntlet" }

// Generate implements Generator.
func (Gauntlet) Generate(prog *p4.Program, rs *rules.Set, budget time.Duration) (*GenStats, []*sym.Template, error) {
	if isProduction(prog) {
		return nil, nil, fmt.Errorf("%w: custom table rules and production features", ErrUnsupported)
	}
	g, err := cfg.Build(prog, rs)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	res, err := sym.Explore(sym.Config{
		Graph: g,
		Options: sym.Options{
			// Model-based enumeration: walk every possible path, decide
			// satisfiability only at the end.
			EarlyTermination: false,
			Solver:           smt.Options{Incremental: false},
			SolverSet:        true,
			Parallelism:      1,
			Deadline:         budget,
			WantModels:       true,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if res.Truncated {
		return nil, nil, ErrTimeout
	}
	return &GenStats{Tool: "Gauntlet", Templates: len(res.Templates), SMTCalls: res.SMT.Checks, Duration: time.Since(start)}, res.Templates, nil
}

// --- Aquila (verification) ---

// Aquila is the Aquila-like verifier baseline. It does not generate test
// packets; Verify explores the whole program discharging per-statement
// verification conditions and checking the intent against the symbolic
// final states.
type Aquila struct{}

// Name implements Generator.
func (Aquila) Name() string { return "Aquila" }

// Generate implements Generator for timing comparisons: the work measured
// is verification (Fig. 9/10 compare Meissa's generation time with
// Aquila's verification time).
func (a Aquila) Generate(prog *p4.Program, rs *rules.Set, budget time.Duration) (*GenStats, []*sym.Template, error) {
	stats, templates, err := a.Verify(prog, rs, budget)
	return stats, templates, err
}

// Verify runs whole-program symbolic verification: every valid path is
// enumerated without code summary, and each action statement contributes
// an additional solver query (the per-statement VC discharge: header
// validity at use, width overflow, table invariants). On production
// multi-pipeline programs this exceeds any reasonable budget — the ◦
// marks on gw-3/gw-4 in Fig. 9.
func (Aquila) Verify(prog *p4.Program, rs *rules.Set, budget time.Duration) (*GenStats, []*sym.Template, error) {
	g, err := cfg.Build(prog, rs)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	vcCount := uint64(0)

	// Instrument: per-node VC discharge is modeled by a callback-free
	// second pass — explore with early termination, then for every
	// template discharge one VC per path node.
	res, err := sym.Explore(sym.Config{
		Graph: g,
		Options: sym.Options{
			EarlyTermination: true,
			Solver:           smt.DefaultOptions(),
			SolverSet:        true,
			Parallelism:      1,
			Deadline:         budget,
			WantModels:       false,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if res.Truncated {
		return nil, nil, ErrTimeout
	}
	deadline := start.Add(budget)
	for _, t := range res.Templates {
		for _, id := range t.Path {
			n := g.Node(id)
			if n.Kind != cfg.Action {
				continue
			}
			// VC: the assigned value fits the variable's width under the
			// path condition (overflow check). Each VC is an independent
			// monolithic solver query — verification tools encode
			// whole-path conditions per obligation rather than reusing
			// incremental state.
			vcSolver := smt.New(smt.Options{Incremental: false})
			for _, c := range t.Constraints {
				vcSolver.Assert(c)
			}
			vcSolver.Check()
			vcCount++
			if budget > 0 && vcCount%256 == 0 && time.Now().After(deadline) {
				return nil, nil, ErrTimeout
			}
		}
	}
	return &GenStats{
		Tool:      "Aquila",
		Templates: len(res.Templates),
		SMTCalls:  res.SMT.Checks + vcCount,
		Duration:  time.Since(start),
	}, res.Templates, nil
}

// --- PTA ---

// PTA is the PTA-like baseline: it executes handwritten test cases and
// cannot generate cases for full coverage (excluded from Fig. 9).
type PTA struct{}

// Name implements Generator.
func (PTA) Name() string { return "PTA" }

// Generate implements Generator; PTA always reports unsupported for
// automatic generation ("PTA requires engineers to handwrite test cases.
// It is not comparable in this experiment").
func (PTA) Generate(*p4.Program, *rules.Set, time.Duration) (*GenStats, []*sym.Template, error) {
	return nil, nil, fmt.Errorf("%w: PTA requires handwritten unit tests", ErrUnsupported)
}

// isProduction reports whether the program uses production features
// beyond the open-source tools' reach: multiple switches, proprietary
// gateway stages, or tunnel encapsulation driven by installed rule sets.
// The corpus marks its gateway programs with a "gw" name prefix, matching
// the paper's split ("we skip their evaluation on the last four
// production programs").
func isProduction(prog *p4.Program) bool {
	if len(prog.Switches()) > 1 {
		return true
	}
	if len(prog.Name) >= 2 && prog.Name[:2] == "gw" {
		return true
	}
	return false
}
