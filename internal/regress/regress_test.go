package regress

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/journal"
	"repro/internal/rulediff"
)

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

// writeBaseline builds a journal with a mix of indexed, unindexed, and
// tag-bearing records.
func writeBaseline(t *testing.T, path string, fp uint64) {
	t.Helper()
	j, err := journal.Open(path, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.AppendWithDeps(journal.Record{Kind: journal.KindCheck, Key: 1, Verdict: journal.Sat}, []string{"acl#0000000000000001"}))
	must(j.AppendWithDeps(journal.Record{Kind: journal.KindCheck, Key: 2, Verdict: journal.Unsat}, []string{"acl#0000000000000002", "nat#0000000000000009"}))
	must(j.AppendWithDeps(journal.Record{Kind: journal.KindEmit, Key: 3, Verdict: journal.Sat,
		Model: []journal.VarVal{{Var: "port", Val: 80}}}, []string{"acl#miss"}))
	must(j.AppendWithDeps(journal.Record{Kind: journal.KindCheck, Key: 4, Verdict: journal.Sat}, nil)) // no deps
	must(j.Append(journal.Record{Kind: journal.KindCheck, Key: 5, Verdict: journal.Sat}))             // unindexed
}

func TestRebaseFiltersByTag(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "base.journal")
	dst := filepath.Join(dir, "next.journal")
	writeBaseline(t, src, 7)

	// Invalidate one acl entry branch: keys 1 drops, 2/3/4 stay, 5 is
	// unindexed and drops conservatively.
	invalid := rulediff.Matcher([]string{"acl#0000000000000001"})
	st, err := Rebase(src, dst, 7, 9, invalid)
	if err != nil {
		t.Fatal(err)
	}
	want := RebaseStats{Baseline: 5, Retained: 3, Invalidated: 1, Unindexed: 1}
	if *st != want {
		t.Fatalf("stats = %+v, want %+v", *st, want)
	}

	// The rebased journal opens under the NEW fingerprint and serves the
	// retained records with their annotations intact.
	d, err := journal.Open(dst, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, ok := d.Lookup(journal.KindCheck, 1); ok {
		t.Error("invalidated record survived the rebase")
	}
	if _, ok := d.Lookup(journal.KindCheck, 5); ok {
		t.Error("unindexed record survived the rebase")
	}
	r, ok := d.Lookup(journal.KindEmit, 3)
	if !ok || r.Verdict != journal.Sat || len(r.Model) != 1 || r.Model[0].Val != 80 {
		t.Fatalf("retained emit record mangled: %+v ok=%v", r, ok)
	}
	if !r.Indexed || len(r.Tables) != 1 || r.Tables[0] != "acl#miss" {
		t.Errorf("retained record lost its dependency index: %+v", r)
	}
	if r, _ := d.Lookup(journal.KindCheck, 4); !r.Indexed {
		t.Error("empty-deps record must stay indexed after rebase")
	}
}

func TestRebaseWholeTableWipe(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "base.journal")
	dst := filepath.Join(dir, "next.journal")
	writeBaseline(t, src, 7)

	st, err := Rebase(src, dst, 7, 7, rulediff.Matcher([]string{"acl"}))
	if err != nil {
		t.Fatal(err)
	}
	// Keys 1, 2 (acl entry tags) and 3 (acl#miss) drop; 4 (no deps) stays.
	want := RebaseStats{Baseline: 5, Retained: 1, Invalidated: 3, Unindexed: 1}
	if *st != want {
		t.Fatalf("stats = %+v, want %+v", *st, want)
	}
}

func TestRebaseNilFilterRetainsIndexed(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "base.journal")
	dst := filepath.Join(dir, "next.journal")
	writeBaseline(t, src, 7)
	st, err := Rebase(src, dst, 7, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retained != 4 || st.Invalidated != 0 || st.Unindexed != 1 {
		t.Fatalf("stats = %+v, want 4 retained / 1 unindexed", *st)
	}
}

func TestRebaseRejectsSamePath(t *testing.T) {
	if _, err := Rebase("x.journal", "x.journal", 1, 1, nil); err == nil {
		t.Fatal("same-path rebase must error")
	}
}

func TestRebaseFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "base.journal")
	writeBaseline(t, src, 7)
	if _, err := Rebase(src, filepath.Join(dir, "next.journal"), 8, 8, nil); err == nil {
		t.Fatal("wrong baseline fingerprint must error")
	}
}

func validReport() *Report {
	return &Report{
		Schema: Schema,
		WallNS: 1,
		Delta: &DeltaReport{
			TablesChanged:   []string{"acl"},
			EntriesModified: 1,
		},
		Journal:   &RebaseStats{Baseline: 5, Retained: 3, Invalidated: 1, Unindexed: 1},
		Templates: &TemplateReport{Baseline: 10, Current: 10, Added: 2, Retired: 2, Unchanged: 8},
		Queries:   NewQueryReport(3, 20, 5),
	}
}

func TestReportValidate(t *testing.T) {
	r := validReport()
	if err := r.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	q := r.Queries
	if q.Avoided != 25 || q.Total != 28 || q.Reuse <= 0.89 || q.Reuse >= 0.9 {
		t.Errorf("NewQueryReport = %+v", q)
	}

	bad := validReport()
	bad.Journal.Retained++
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "journal accounting") {
		t.Errorf("journal imbalance not caught: %v", err)
	}
	bad = validReport()
	bad.Templates.Unchanged--
	if bad.Validate() == nil {
		t.Error("template imbalance not caught")
	}
	bad = validReport()
	bad.Queries.Total++
	if bad.Validate() == nil {
		t.Error("query imbalance not caught")
	}
	bad = validReport()
	bad.Schema = "nope"
	if bad.Validate() == nil {
		t.Error("schema mismatch not caught")
	}
	bad = validReport()
	bad.Delta = nil
	if bad.Validate() == nil {
		t.Error("missing section not caught")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := validReport()
	r.Program = "gw-1"
	r.RuleSet = "set-1"
	data, err := jsonMarshal(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "gw-1" || got.Queries.Avoided != 25 || got.Templates.Unchanged != 8 {
		t.Errorf("round-trip mangled report: %+v", got)
	}
	if _, err := ParseReport([]byte("{")); err == nil {
		t.Error("garbage accepted")
	}
}
