package regress

import (
	"encoding/json"
	"fmt"

	"repro/internal/obs"
)

// Schema versions the machine-readable incremental-regression report
// written by `meissa regress -report`. Bump on any incompatible change.
const Schema = "meissa.regress-report/v1"

// DeltaReport summarizes the rule-set delta that drove the run.
type DeltaReport struct {
	TablesChanged   []string `json:"tables_changed"`
	EntriesAdded    int      `json:"entries_added"`
	EntriesRemoved  int      `json:"entries_removed"`
	EntriesModified int      `json:"entries_modified"`
}

// TemplateReport compares the baseline and incremental template sets by
// their content-based path keys (sym.Template.PathKey, multiset
// semantics: a path key appearing twice counts twice).
type TemplateReport struct {
	// Baseline / Current are the template counts of the two runs.
	Baseline int `json:"baseline"`
	Current  int `json:"current"`
	// Added templates exist only under the new rules; Retired only under
	// the old; Unchanged under both. Added+Unchanged == Current and
	// Retired+Unchanged == Baseline.
	Added     int `json:"added"`
	Retired   int `json:"retired"`
	Unchanged int `json:"unchanged"`
}

// QueryReport accounts for solver work in the incremental run: what was
// actually solved live versus answered from the rebased journal or the
// verdict cache. The perf gate of incremental regression is Live being a
// small fraction of Total.
type QueryReport struct {
	// Live counts queries the incremental run's solver actually ran.
	Live uint64 `json:"live"`
	// JournalHits counts solver interactions answered from the rebased
	// journal; CacheHits from the shared verdict cache.
	JournalHits uint64 `json:"journal_hits"`
	CacheHits   uint64 `json:"cache_hits"`
	// Avoided = JournalHits + CacheHits; Total = Live + Avoided.
	Avoided uint64 `json:"avoided"`
	Total   uint64 `json:"total"`
	// Reuse = Avoided / Total (0 when Total is 0).
	Reuse float64 `json:"reuse"`
}

// Report is the machine-readable result of one incremental regression
// run. The embedded Run is the incremental generation's ordinary run
// report, so one file carries both the regression accounting and the
// full phase/solver/journal detail.
type Report struct {
	Schema  string `json:"schema"`
	Program string `json:"program,omitempty"`
	RuleSet string `json:"rule_set,omitempty"`
	// WallNS is the end-to-end regress wall-clock: diff, rebase, and the
	// incremental generation.
	WallNS    int64           `json:"wall_ns"`
	Delta     *DeltaReport    `json:"delta"`
	Journal   *RebaseStats    `json:"journal"`
	Templates *TemplateReport `json:"templates"`
	Queries   *QueryReport    `json:"queries"`
	Run       *obs.Report     `json:"run,omitempty"`
}

// NewQueryReport derives the query section from raw counts.
func NewQueryReport(live, journalHits, cacheHits uint64) *QueryReport {
	q := &QueryReport{
		Live:        live,
		JournalHits: journalHits,
		CacheHits:   cacheHits,
		Avoided:     journalHits + cacheHits,
	}
	q.Total = q.Live + q.Avoided
	if q.Total > 0 {
		q.Reuse = float64(q.Avoided) / float64(q.Total)
	}
	return q
}

// Validate checks the report's structural invariants; the CI
// regress-smoke gate runs it before trusting a file.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("regress: report schema %q, want %q", r.Schema, Schema)
	}
	if r.WallNS <= 0 {
		return fmt.Errorf("regress: report wall_ns = %d, want > 0", r.WallNS)
	}
	if r.Delta == nil || r.Journal == nil || r.Templates == nil || r.Queries == nil {
		return fmt.Errorf("regress: report missing a required section")
	}
	j := r.Journal
	if j.Retained+j.Invalidated+j.Unindexed != j.Baseline {
		return fmt.Errorf("regress: journal accounting %d+%d+%d != baseline %d",
			j.Retained, j.Invalidated, j.Unindexed, j.Baseline)
	}
	t := r.Templates
	if t.Added+t.Unchanged != t.Current {
		return fmt.Errorf("regress: templates added %d + unchanged %d != current %d",
			t.Added, t.Unchanged, t.Current)
	}
	if t.Retired+t.Unchanged != t.Baseline {
		return fmt.Errorf("regress: templates retired %d + unchanged %d != baseline %d",
			t.Retired, t.Unchanged, t.Baseline)
	}
	q := r.Queries
	if q.Avoided != q.JournalHits+q.CacheHits {
		return fmt.Errorf("regress: queries avoided %d != journal %d + cache %d",
			q.Avoided, q.JournalHits, q.CacheHits)
	}
	if q.Total != q.Live+q.Avoided {
		return fmt.Errorf("regress: queries total %d != live %d + avoided %d",
			q.Total, q.Live, q.Avoided)
	}
	if r.Run != nil {
		if err := r.Run.Validate(); err != nil {
			return fmt.Errorf("regress: embedded run report: %w", err)
		}
	}
	return nil
}

// ParseReport decodes and validates a serialized regress report.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("regress: parse report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
