package regress

import "repro/internal/obs"

// Registry handles for incremental-regression observability, resolved
// once at package init.
var (
	// mRecordsRetained / mRecordsInvalidated count baseline journal records
	// carried over to, respectively dropped from, rebased journals
	// (unindexed records count as invalidated: they are dropped too).
	mRecordsRetained    = obs.GetCounter("regress.records_retained")
	mRecordsInvalidated = obs.GetCounter("regress.records_invalidated")

	// mQueriesAvoided counts solver queries the incremental run answered
	// from reuse (journal hits plus verdict-cache hits) instead of solving.
	mQueriesAvoided = obs.GetCounter("regress.queries_avoided")

	// mRuns counts completed incremental regression runs.
	mRuns = obs.GetCounter("regress.runs")
)

// RecordRun bumps the run-level counters for one completed incremental
// regression run.
func RecordRun(q *QueryReport) {
	mQueriesAvoided.Add(q.Avoided)
	mRuns.Inc()
}
