// Package regress implements incremental regression testing: given a
// baseline run's checkpoint journal and a rule-set delta, it rebases the
// journal onto the new rule set — retiring exactly the records whose
// paths crossed a changed table branch — so the re-exploration answers
// every untouched solver interaction from the journal and re-solves only
// the affected subtrees.
//
// Soundness does not rest on the invalidation being precise: journal
// records are keyed by content-based path-prefix hashes (internal/sym),
// so a retained record can only ever be looked up by a walk whose
// context and path content are byte-identical to the walk that produced
// it — and verdicts are pure functions of that content. The dependency
// index therefore only has to be an over-approximation for the REBASED
// journal to be exact; invalidating too much merely costs re-solving.
// The invalidation rule (internal/rulediff.InvalidTags) is conservative
// in exactly that direction: arg-only deltas retire the modified
// entries' branches, anything structural retires the whole table.
package regress

import (
	"fmt"

	"repro/internal/journal"
)

// RebaseStats accounts for one journal rebase.
type RebaseStats struct {
	// Baseline is the number of verdict records in the source journal
	// (deduplicated, dependency annotations folded in).
	Baseline int `json:"baseline_records"`
	// Retained records were copied to the destination journal: their
	// dependency tags avoid every invalidated branch, so the incremental
	// run answers them without re-solving.
	Retained int `json:"retained"`
	// Invalidated records crossed a changed table branch and were dropped.
	Invalidated int `json:"invalidated"`
	// Unindexed records carried no dependency index (torn pair, or written
	// by a pre-index run) and were dropped conservatively.
	Unindexed int `json:"unindexed"`
}

// Rebase copies the baseline journal at srcPath onto a fresh journal at
// dstPath, keeping every indexed record whose dependency tags all pass
// the invalid filter (invalid == nil retains every indexed record). The
// destination is created with dstFP — the incremental run's fingerprint
// under the NEW rule set — so resuming from it cross-checks exactly like
// any other checkpoint. The source is opened read-only-resume and left
// untouched.
func Rebase(srcPath, dstPath string, srcFP, dstFP uint64, invalid func(tag string) bool) (*RebaseStats, error) {
	if srcPath == dstPath {
		return nil, fmt.Errorf("regress: rebase source and destination are the same file %q", srcPath)
	}
	src, err := journal.Open(srcPath, srcFP, true)
	if err != nil {
		return nil, fmt.Errorf("regress: open baseline: %w", err)
	}
	recs := src.Records()
	if err := src.Close(); err != nil {
		return nil, fmt.Errorf("regress: close baseline: %w", err)
	}

	dst, err := journal.Open(dstPath, dstFP, false)
	if err != nil {
		return nil, fmt.Errorf("regress: create rebased journal: %w", err)
	}
	st := &RebaseStats{Baseline: len(recs)}
	for _, r := range recs {
		if !r.Indexed {
			st.Unindexed++
			continue
		}
		drop := false
		if invalid != nil {
			for _, tag := range r.Tables {
				if invalid(tag) {
					drop = true
					break
				}
			}
		}
		if drop {
			st.Invalidated++
			continue
		}
		tables := r.Tables
		r.Tables, r.Indexed = nil, false
		if err := dst.AppendWithDeps(r, tables); err != nil {
			dst.Close()
			return nil, fmt.Errorf("regress: rebase append: %w", err)
		}
		st.Retained++
	}
	if err := dst.Close(); err != nil {
		return nil, fmt.Errorf("regress: close rebased journal: %w", err)
	}
	mRecordsRetained.Add(uint64(st.Retained))
	mRecordsInvalidated.Add(uint64(st.Invalidated + st.Unindexed))
	return st, nil
}
