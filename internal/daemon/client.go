package daemon

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is one connection to a resident daemon. It is safe for
// concurrent use: requests are written and answered in order on the
// single connection, so Do serializes callers.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	sc     *bufio.Scanner
	nextID uint64
}

// Dial connects to a daemon at addr ("unix://path", "tcp://host:port",
// or bare "host:port"), retrying until timeout so a client racing a
// just-started daemon wins.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	network, address, err := ParseAddr(addr)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	const retry = 100 * time.Millisecond
	for {
		conn, err := net.DialTimeout(network, address, timeout)
		if err == nil {
			return &Client{conn: conn, sc: newLineScanner(conn)}, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("daemon: dial %s: %w", addr, err)
		}
		time.Sleep(retry)
	}
}

// Do sends one request and waits for its response. The request ID is
// assigned here; a response with a different ID (protocol corruption)
// is an error.
func (c *Client) Do(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID
	if err := writeMsg(c.conn, req); err != nil {
		return nil, fmt.Errorf("daemon: send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("daemon: recv: %w", err)
		}
		return nil, fmt.Errorf("daemon: connection closed mid-request")
	}
	var resp Response
	if err := unmarshalStrict(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("daemon: recv: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("daemon: response id %d for request %d", resp.ID, req.ID)
	}
	return &resp, nil
}

// Close hangs up.
func (c *Client) Close() error { return c.conn.Close() }
