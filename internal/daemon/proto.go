// Package daemon implements the resident verification service behind
// `meissa serve`: one process that owns the open verdict store and an
// in-memory registry of loaded program families, answering generation
// and regression requests from many tenants over a line-delimited-JSON
// API. Warm state — the family's seeded verdict cache plus the store's
// journaled verdicts — makes a repeat request for an unchanged family
// complete with zero live solver queries, byte-identical to a cold CLI
// run.
package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
)

// Op names a request operation.
const (
	OpLoad    = "load"
	OpGen     = "gen"
	OpRegress = "regress"
	OpStatus  = "status"
	OpUnload  = "unload"
)

// Request is one client request: a single JSON object on one line.
type Request struct {
	// ID is echoed on the response; clients use it to match replies.
	ID uint64 `json:"id"`
	Op string `json:"op"`
	// Tenant names the fair-share queue this request joins (empty =
	// "default"). Requests are scheduled round-robin across tenants.
	Tenant string `json:"tenant,omitempty"`
	// Family names the loaded program family a gen/regress/unload
	// targets. load defaults it to the parsed program's name.
	Family string `json:"family,omitempty"`
	// Program/Rules/Specs are printed source texts (load; Rules also
	// overrides the family's rule set for one gen request).
	Program string `json:"program,omitempty"`
	Rules   string `json:"rules,omitempty"`
	Specs   string `json:"specs,omitempty"`

	Gen     *GenParams     `json:"gen,omitempty"`
	Regress *RegressParams `json:"regress,omitempty"`
}

// GenParams mirrors the `meissa gen` flags that affect a daemon run.
type GenParams struct {
	NoSummary       bool  `json:"no_summary,omitempty"`
	Parallel        int   `json:"parallel,omitempty"`
	Strict          bool  `json:"strict,omitempty"`
	SolverBudget    int   `json:"solver_budget,omitempty"`
	SolverTimeoutNS int64 `json:"solver_timeout_ns,omitempty"`
	// Workers > 1 shards the final pass across subprocess workers (one
	// coordinator at a time, capped by the scheduler). Sharded runs skip
	// the family verdict cache so the plan stays shard-eligible.
	Workers int `json:"workers,omitempty"`
}

// RegressParams carries an inline rule delta: the updated rule set text
// replaces the family's committed rules in one atomic store update.
type RegressParams struct {
	// NewRules is the updated rule set (printed form). Required.
	NewRules  string `json:"new_rules"`
	NoSummary bool   `json:"no_summary,omitempty"`
	Parallel  int    `json:"parallel,omitempty"`
}

// Response is one reply: a single JSON object on one line, ID matching
// the request.
type Response struct {
	ID      uint64 `json:"id"`
	OK      bool   `json:"ok"`
	Op      string `json:"op,omitempty"`
	Error   string `json:"error,omitempty"`
	TraceID string `json:"trace_id,omitempty"`

	Load    *LoadResponse    `json:"load,omitempty"`
	Gen     *GenResponse     `json:"gen,omitempty"`
	Regress *RegressResponse `json:"regress,omitempty"`
	Status  *StatusResponse  `json:"status,omitempty"`
}

// LoadResponse acknowledges a family load.
type LoadResponse struct {
	Family   string `json:"family"`
	Replaced bool   `json:"replaced,omitempty"`
}

// GenResponse carries a generation result. Templates is the exact
// deterministic rendering `meissa gen -o` writes — the byte-identity
// currency between warm daemon runs and cold CLI runs.
type GenResponse struct {
	Templates    string      `json:"templates"`
	NumTemplates int         `json:"num_templates"`
	SMTCalls     uint64      `json:"smt_calls"`
	JournalHits  uint64      `json:"journal_hits"`
	WarmHit      bool        `json:"warm_hit"`
	WallNS       int64       `json:"wall_ns"`
	Report       *obs.Report `json:"report,omitempty"`
}

// RegressResponse carries an incremental regression result; Templates
// renders the incremental run's cases (diffable against a cold gen on
// the new rules).
type RegressResponse struct {
	Templates    string      `json:"templates"`
	NumTemplates int         `json:"num_templates"`
	Report       *obs.Report `json:"report,omitempty"`
}

// StatusResponse is the daemon's service-level snapshot.
type StatusResponse struct {
	Addr           string         `json:"addr"`
	UptimeNS       int64          `json:"uptime_ns"`
	RequestsServed uint64         `json:"requests_served"`
	WarmHits       uint64         `json:"warm_hits"`
	StoreConflicts uint64         `json:"store_conflicts"`
	Inflight       int            `json:"inflight"`
	QueueDepth     int            `json:"queue_depth"`
	Families       []FamilyStatus `json:"families"`
}

// FamilyStatus is one loaded family's counters.
type FamilyStatus struct {
	Name      string `json:"name"`
	Gens      uint64 `json:"gens"`
	Regresses uint64 `json:"regresses"`
	WarmHits  uint64 `json:"warm_hits"`
}

// maxLine bounds one protocol line; printed programs and rendered
// template sets ride in JSON strings, so the cap is generous.
const maxLine = 64 << 20

// newLineScanner wraps r in a Scanner sized for protocol lines.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	return sc
}

// unmarshalStrict decodes one protocol line, rejecting unknown fields
// so a client/daemon version skew fails loudly instead of silently
// dropping parameters.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeMsg emits v as one JSON line.
func writeMsg(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ParseAddr maps a daemon address to (network, address):
// "unix://path" → unix socket; "tcp://host:port" or a bare "host:port"
// → TCP.
func ParseAddr(addr string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix://"):
		return "unix", strings.TrimPrefix(addr, "unix://"), nil
	case strings.HasPrefix(addr, "tcp://"):
		return "tcp", strings.TrimPrefix(addr, "tcp://"), nil
	case addr == "":
		return "", "", fmt.Errorf("daemon: empty address")
	default:
		return "tcp", addr, nil
	}
}
