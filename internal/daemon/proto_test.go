package daemon

import (
	"bytes"
	"strings"
	"testing"
)

func TestProtoRoundTrip(t *testing.T) {
	req := &Request{
		ID: 7, Op: OpGen, Tenant: "t", Family: "gw-1",
		Rules: "rules text",
		Gen:   &GenParams{Parallel: 2, Workers: 3, SolverBudget: 100},
	}
	var buf bytes.Buffer
	if err := writeMsg(&buf, req); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 || !strings.HasSuffix(buf.String(), "\n") {
		t.Fatalf("message is not exactly one line: %q", buf.String())
	}
	var got Request
	if err := unmarshalStrict(bytes.TrimSpace(buf.Bytes()), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Op != OpGen || got.Tenant != "t" || got.Family != "gw-1" ||
		got.Gen == nil || got.Gen.Parallel != 2 || got.Gen.Workers != 3 || got.Gen.SolverBudget != 100 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestProtoUnknownFieldRejected(t *testing.T) {
	err := unmarshalStrict([]byte(`{"id":1,"op":"gen","bogus":true}`), &Request{})
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in, network, address string
		wantErr              bool
	}{
		{"unix:///tmp/d.sock", "unix", "/tmp/d.sock", false},
		{"tcp://127.0.0.1:7600", "tcp", "127.0.0.1:7600", false},
		{"127.0.0.1:7600", "tcp", "127.0.0.1:7600", false},
		{"", "", "", true},
	}
	for _, c := range cases {
		network, address, err := ParseAddr(c.in)
		if (err != nil) != c.wantErr {
			t.Fatalf("ParseAddr(%q) err = %v", c.in, err)
		}
		if network != c.network || address != c.address {
			t.Fatalf("ParseAddr(%q) = %q,%q want %q,%q", c.in, network, address, c.network, c.address)
		}
	}
}
