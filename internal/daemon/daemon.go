package daemon

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	meissa "repro"
	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/store"
)

// Daemon metric names in the process obs registry.
var (
	mRequests  = obs.GetCounter("daemon.requests")
	mWarmHits  = obs.GetCounter("daemon.warm_hits")
	mConflicts = obs.GetCounter("daemon.store_conflicts")
	gFamilies  = obs.GetGauge("daemon.families")
	gInflight  = obs.GetGauge("daemon.inflight")
	gQueue     = obs.GetGauge("daemon.queue_depth")
)

// Config configures a resident daemon.
type Config struct {
	// Addr is the listen address: "unix://path", "tcp://host:port", or a
	// bare "host:port".
	Addr string
	// StorePath is the disk-backed verdict store the daemon owns for its
	// lifetime; every family's verdicts live in (and warm from) it.
	StorePath string
	// StoreWait bounds the wait for the store's advisory lock at startup
	// (another daemon or CLI run may hold it briefly). Zero fails fast
	// with store.ErrStoreBusy.
	StoreWait time.Duration
	// MaxConcurrent caps concurrently executing requests (min 1,
	// default 2); MaxCoordinators caps how many of those may be shard
	// coordinators (min 1, default 1).
	MaxConcurrent   int
	MaxCoordinators int
	// DrainTimeout bounds Shutdown's wait for in-flight requests
	// (default 30s).
	DrainTimeout time.Duration
	// SlowRequest, when > 0, sleeps that long inside every gen/regress
	// request after its execution slot is acquired — a fault-injection
	// knob so crash tests can kill the daemon mid-request. Zero in
	// production.
	SlowRequest time.Duration
}

// family is one loaded program family: the parsed inputs plus the warm
// in-memory state (the shared solver-verdict cache) that makes repeat
// requests cheap. The scheduler serializes all requests touching one
// family, so fields need no lock of their own.
type family struct {
	name  string
	prog  *p4.Program
	rules *rules.Set
	specs []*spec.Spec
	// cache is the family's persistent solver-verdict cache, seeded by
	// store warming on the first run and kept warm across requests.
	// Sharded runs bypass it (the plan must stay shard-eligible).
	cache *smt.VerdictCache

	gens      atomic.Uint64
	regresses atomic.Uint64
	warmHits  atomic.Uint64
}

// Daemon is the resident verification service: one open store, a
// registry of warm families, and a fair-share request scheduler behind
// a line-delimited-JSON listener.
type Daemon struct {
	cfg   Config
	st    *store.Store
	sched *sched
	start time.Time

	network string // resolved from cfg.Addr
	address string
	ln      net.Listener

	mu       sync.Mutex // guards families
	families map[string]*family

	drainMu  sync.Mutex // guards draining + reqWG.Add pairing
	draining bool
	reqWG    sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	requests       atomic.Uint64
	warmHits       atomic.Uint64
	storeConflicts atomic.Uint64
}

// New opens the daemon's store (waiting up to cfg.StoreWait for the
// advisory lock) and prepares the service. The caller must Listen and
// Serve, then Shutdown to release the store.
func New(cfg Config) (*Daemon, error) {
	if cfg.StorePath == "" {
		return nil, fmt.Errorf("daemon: no store path configured")
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxCoordinators < 1 {
		cfg.MaxCoordinators = 1
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	network, address, err := ParseAddr(cfg.Addr)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(cfg.StorePath, store.Options{LockWait: cfg.StoreWait})
	if err != nil {
		return nil, fmt.Errorf("daemon: open store: %w", err)
	}
	return &Daemon{
		cfg:      cfg,
		st:       st,
		sched:    newSched(cfg.MaxConcurrent, cfg.MaxCoordinators),
		start:    time.Now(),
		network:  network,
		address:  address,
		families: map[string]*family{},
		conns:    map[net.Conn]struct{}{},
	}, nil
}

// Listen binds the service address. A stale unix socket left by a
// killed daemon is removed first — the store's advisory lock, not the
// socket file, is what guards against two live daemons.
func (d *Daemon) Listen() error {
	if d.network == "unix" {
		if _, err := os.Stat(d.address); err == nil {
			_ = os.Remove(d.address)
		}
	}
	ln, err := net.Listen(d.network, d.address)
	if err != nil {
		return fmt.Errorf("daemon: listen %s: %w", d.cfg.Addr, err)
	}
	d.ln = ln
	return nil
}

// Addr returns the bound address in redialable form (resolves ":0").
func (d *Daemon) Addr() string {
	if d.ln == nil {
		return d.cfg.Addr
	}
	if d.network == "unix" {
		return "unix://" + d.ln.Addr().String()
	}
	return "tcp://" + d.ln.Addr().String()
}

// Serve accepts connections until Shutdown closes the listener. It
// installs the daemon's /fleet fallback view for its duration.
func (d *Daemon) Serve() error {
	if d.ln == nil {
		if err := d.Listen(); err != nil {
			return err
		}
	}
	obs.SetFleetFallback(d.view)
	defer obs.SetFleetFallback(nil)
	obs.Infof("meissa: daemon serving on %s (store %s)", d.Addr(), d.cfg.StorePath)
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			d.drainMu.Lock()
			draining := d.draining
			d.drainMu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		d.connMu.Lock()
		d.conns[conn] = struct{}{}
		d.connMu.Unlock()
		go d.serveConn(conn)
	}
}

// Shutdown drains the daemon: stop accepting, let in-flight requests
// finish (bounded by DrainTimeout), then close every connection and
// the store. Safe to call once.
func (d *Daemon) Shutdown() error {
	d.drainMu.Lock()
	if d.draining {
		d.drainMu.Unlock()
		return nil
	}
	d.draining = true
	d.drainMu.Unlock()

	if d.ln != nil {
		_ = d.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		d.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d.cfg.DrainTimeout):
		obs.Warnf("meissa: daemon drain timeout after %v; closing connections with requests in flight", d.cfg.DrainTimeout)
	}
	d.sched.Close()
	d.connMu.Lock()
	for c := range d.conns {
		_ = c.Close()
	}
	d.conns = map[net.Conn]struct{}{}
	d.connMu.Unlock()
	return d.st.Close()
}

// beginReq pairs the draining check with the WaitGroup add so Shutdown
// cannot miss a request that was admitted concurrently.
func (d *Daemon) beginReq() bool {
	d.drainMu.Lock()
	defer d.drainMu.Unlock()
	if d.draining {
		return false
	}
	d.reqWG.Add(1)
	return true
}

// serveConn reads one JSON request per line and writes one JSON
// response per line, in order, until the peer hangs up or the daemon
// drains.
func (d *Daemon) serveConn(conn net.Conn) {
	defer func() {
		d.connMu.Lock()
		delete(d.conns, conn)
		d.connMu.Unlock()
		_ = conn.Close()
	}()
	sc := newLineScanner(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var req Request
		if err := unmarshalStrict(line, &req); err != nil {
			_ = writeMsg(conn, &Response{OK: false, Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		if !d.beginReq() {
			_ = writeMsg(conn, &Response{ID: req.ID, OK: false, Op: req.Op, Error: "daemon draining"})
			return
		}
		resp := d.handle(&req)
		// The write happens before Done so Shutdown's drain cannot close
		// the connection between computing a response and delivering it.
		werr := writeMsg(conn, resp)
		d.reqWG.Done()
		if werr != nil {
			return
		}
	}
}

// handle dispatches one request. Every response carries the request ID
// and op; failures carry the error text.
func (d *Daemon) handle(req *Request) *Response {
	resp := &Response{ID: req.ID, Op: req.Op, TraceID: obs.NewTraceID()}
	var err error
	switch req.Op {
	case OpLoad:
		err = d.handleLoad(req, resp)
	case OpGen:
		err = d.handleGen(req, resp)
	case OpRegress:
		err = d.handleRegress(req, resp)
	case OpStatus:
		err = d.handleStatus(resp)
	case OpUnload:
		err = d.handleUnload(req, resp)
	default:
		err = fmt.Errorf("unknown op %q", req.Op)
	}
	if err != nil {
		resp.Error = err.Error()
		if errors.Is(err, store.ErrStoreBusy) || errors.Is(err, store.ErrWedged) {
			d.storeConflicts.Add(1)
			mConflicts.Inc()
		}
		return resp
	}
	resp.OK = true
	return resp
}

// lookup returns the named family, which must be loaded.
func (d *Daemon) lookup(name string) (*family, error) {
	if name == "" {
		return nil, fmt.Errorf("missing family")
	}
	d.mu.Lock()
	fam := d.families[name]
	d.mu.Unlock()
	if fam == nil {
		return nil, fmt.Errorf("family %q not loaded", name)
	}
	return fam, nil
}

// handleLoad parses the request's source texts and installs (or
// replaces) the family with a fresh verdict cache. The store is not
// touched: warming happens lazily on the family's first gen.
func (d *Daemon) handleLoad(req *Request, resp *Response) error {
	if req.Program == "" {
		return fmt.Errorf("load: missing program text")
	}
	prog, err := p4.Parse(req.Program)
	if err != nil {
		return fmt.Errorf("load: program: %w", err)
	}
	rs := rules.NewSet()
	if req.Rules != "" {
		if rs, err = rules.Parse(req.Rules); err != nil {
			return fmt.Errorf("load: rules: %w", err)
		}
	}
	var specs []*spec.Spec
	if req.Specs != "" {
		if specs, err = spec.Parse(req.Specs); err != nil {
			return fmt.Errorf("load: specs: %w", err)
		}
	}
	name := req.Family
	if name == "" {
		name = prog.Name
	}
	// Serialize against in-flight requests on the same family so a
	// replace never swaps state under a running generation.
	release, err := d.sched.Acquire(req.Tenant, name, false)
	if err != nil {
		return err
	}
	defer release()
	fam := &family{name: name, prog: prog, rules: rs, specs: specs, cache: smt.NewVerdictCache()}
	d.mu.Lock()
	_, replaced := d.families[name]
	d.families[name] = fam
	gFamilies.Set(int64(len(d.families)))
	d.mu.Unlock()
	d.count()
	resp.Load = &LoadResponse{Family: name, Replaced: replaced}
	return nil
}

// handleGen runs one generation for a loaded family against the
// daemon's store. Repeat requests for an unchanged family are answered
// entirely from warm state: the store materializes a resume journal, so
// the run needs zero live solver queries and the rendered templates are
// byte-identical to a cold CLI run.
func (d *Daemon) handleGen(req *Request, resp *Response) error {
	fam, err := d.lookup(req.Family)
	if err != nil {
		return err
	}
	params := req.Gen
	if params == nil {
		params = &GenParams{}
	}
	reqStart := time.Now()
	release, err := d.sched.Acquire(req.Tenant, fam.name, params.Workers > 1)
	if err != nil {
		return err
	}
	defer release()
	queueWait := time.Since(reqStart)
	d.slowdown()

	rs := fam.rules
	if req.Rules != "" {
		if rs, err = rules.Parse(req.Rules); err != nil {
			return fmt.Errorf("gen: rules: %w", err)
		}
	}

	opts := meissa.DefaultOptions()
	opts.CodeSummary = !params.NoSummary
	opts.Parallelism = params.Parallel
	opts.Strict = params.Strict
	opts.SolverSearchBudget = params.SolverBudget
	opts.SolverCheckTimeout = time.Duration(params.SolverTimeoutNS)
	opts.Store = d.st
	if params.Workers > 1 {
		// Sharded runs skip the family cache: a non-nil VerdictCache
		// disqualifies the shard plan.
		opts.ShardWorkers = params.Workers
	} else {
		opts.VerdictCache = fam.cache
	}

	sys, err := meissa.New(fam.prog, rs, fam.specs, opts)
	if err != nil {
		return err
	}
	gen, err := sys.Generate()
	if err != nil {
		return err
	}
	// The store transaction committed; the override rules are now the
	// family's rules.
	fam.rules = rs
	fam.gens.Add(1)

	warm := gen.Store != nil && gen.Store.Warmed > 0 && gen.SMTCalls == 0
	if warm {
		fam.warmHits.Add(1)
		d.warmHits.Add(1)
		mWarmHits.Inc()
	}
	var buf bytes.Buffer
	if err := meissa.WriteTemplates(&buf, gen.Templates); err != nil {
		return err
	}
	rep := gen.Report("gen", fam.name, opts.Parallelism)
	d.count()
	rep.Daemon = d.daemonReport(queueWait, time.Since(reqStart))
	resp.Gen = &GenResponse{
		Templates:    buf.String(),
		NumTemplates: len(gen.Templates),
		SMTCalls:     gen.SMTCalls,
		JournalHits:  gen.JournalHits,
		WarmHit:      warm,
		WallNS:       int64(gen.Duration),
		Report:       rep,
	}
	return nil
}

// handleRegress applies an inline rule delta as one incremental
// regression against the store: stored rules are the baseline, the new
// rules and surviving verdicts commit back in one atomic transaction,
// and the family's in-memory rule set and verdict cache advance with
// it.
func (d *Daemon) handleRegress(req *Request, resp *Response) error {
	fam, err := d.lookup(req.Family)
	if err != nil {
		return err
	}
	params := req.Regress
	if params == nil || params.NewRules == "" {
		return fmt.Errorf("regress: missing new_rules")
	}
	newRules, err := rules.Parse(params.NewRules)
	if err != nil {
		return fmt.Errorf("regress: new rules: %w", err)
	}
	reqStart := time.Now()
	release, err := d.sched.Acquire(req.Tenant, fam.name, false)
	if err != nil {
		return err
	}
	defer release()
	queueWait := time.Since(reqStart)
	d.slowdown()

	opts := meissa.DefaultOptions()
	opts.CodeSummary = !params.NoSummary
	opts.Parallelism = params.Parallel
	opts.Store = d.st
	// The family cache rides along as the watch-mode cache: RegressStore
	// invalidates the delta's tags in it and seeds it for the next run.
	opts.VerdictCache = fam.cache
	res, err := meissa.RegressStore(meissa.RegressInput{
		Prog:     fam.prog,
		NewRules: newRules,
		Specs:    fam.specs,
		Opts:     opts,
		Program:  fam.name,
		RuleSet:  "daemon",
	})
	if err != nil {
		return err
	}
	fam.rules = newRules
	fam.regresses.Add(1)

	var buf bytes.Buffer
	if err := meissa.WriteTemplates(&buf, res.Gen.Templates); err != nil {
		return err
	}
	rep := res.Gen.Report("regress", fam.name, opts.Parallelism)
	d.count()
	rep.Daemon = d.daemonReport(queueWait, time.Since(reqStart))
	resp.Regress = &RegressResponse{
		Templates:    buf.String(),
		NumTemplates: len(res.Gen.Templates),
		Report:       rep,
	}
	return nil
}

func (d *Daemon) handleStatus(resp *Response) error {
	st := &StatusResponse{
		Addr:           d.Addr(),
		UptimeNS:       int64(time.Since(d.start)),
		RequestsServed: d.requests.Load(),
		WarmHits:       d.warmHits.Load(),
		StoreConflicts: d.storeConflicts.Load(),
		Inflight:       d.sched.Running(),
		QueueDepth:     d.sched.Depth(),
	}
	d.mu.Lock()
	for _, fam := range d.families {
		st.Families = append(st.Families, FamilyStatus{
			Name:      fam.name,
			Gens:      fam.gens.Load(),
			Regresses: fam.regresses.Load(),
			WarmHits:  fam.warmHits.Load(),
		})
	}
	d.mu.Unlock()
	sort.Slice(st.Families, func(i, j int) bool { return st.Families[i].Name < st.Families[j].Name })
	d.count()
	st.RequestsServed = d.requests.Load()
	resp.Status = st
	return nil
}

func (d *Daemon) handleUnload(req *Request, resp *Response) error {
	fam, err := d.lookup(req.Family)
	if err != nil {
		return err
	}
	// Wait for in-flight work on the family before dropping it.
	release, err := d.sched.Acquire(req.Tenant, fam.name, false)
	if err != nil {
		return err
	}
	defer release()
	d.mu.Lock()
	delete(d.families, fam.name)
	gFamilies.Set(int64(len(d.families)))
	d.mu.Unlock()
	d.count()
	resp.Load = &LoadResponse{Family: fam.name}
	return nil
}

// count tallies one served request in both the daemon counters and the
// obs registry, and refreshes the queue gauges.
func (d *Daemon) count() {
	d.requests.Add(1)
	mRequests.Inc()
	gInflight.Set(int64(d.sched.Running()))
	gQueue.Set(int64(d.sched.Depth()))
}

// slowdown is the SlowRequest fault-injection hook (no-op in
// production).
func (d *Daemon) slowdown() {
	if d.cfg.SlowRequest > 0 {
		time.Sleep(d.cfg.SlowRequest)
	}
}

// daemonReport stamps the run report's daemon section. Callers count
// the request first, so RequestsServed is never zero here.
func (d *Daemon) daemonReport(queueWait, wall time.Duration) *obs.DaemonReport {
	rep := &obs.DaemonReport{
		Addr:                 d.Addr(),
		RequestsServed:       d.requests.Load(),
		WarmHits:             d.warmHits.Load(),
		StoreConflicts:       d.storeConflicts.Load(),
		QueueWaitNS:          int64(queueWait),
		TimeToFirstVerdictNS: int64(wall),
	}
	d.mu.Lock()
	rep.Families = len(d.families)
	d.mu.Unlock()
	if up := time.Since(d.start); up > 0 {
		rep.RequestsPerSec = float64(rep.RequestsServed) / up.Seconds()
	}
	return rep
}

// view is the /fleet fallback payload: live daemon state for `meissa
// top` and curl, distinguished from a coordinator view by the "daemon"
// discriminator.
func (d *Daemon) view() any {
	type famView struct {
		Name      string `json:"name"`
		Gens      uint64 `json:"gens"`
		Regresses uint64 `json:"regresses"`
		WarmHits  uint64 `json:"warm_hits"`
	}
	v := struct {
		Daemon         bool      `json:"daemon"`
		Addr           string    `json:"addr"`
		UptimeNS       int64     `json:"uptime_ns"`
		RequestsServed uint64    `json:"requests_served"`
		WarmHits       uint64    `json:"warm_hits"`
		StoreConflicts uint64    `json:"store_conflicts"`
		Inflight       int       `json:"inflight"`
		QueueDepth     int       `json:"queue_depth"`
		Families       []famView `json:"families"`
	}{
		Daemon:         true,
		Addr:           d.Addr(),
		UptimeNS:       int64(time.Since(d.start)),
		RequestsServed: d.requests.Load(),
		WarmHits:       d.warmHits.Load(),
		StoreConflicts: d.storeConflicts.Load(),
		Inflight:       d.sched.Running(),
		QueueDepth:     d.sched.Depth(),
	}
	d.mu.Lock()
	for _, fam := range d.families {
		v.Families = append(v.Families, famView{
			Name: fam.name, Gens: fam.gens.Load(),
			Regresses: fam.regresses.Load(), WarmHits: fam.warmHits.Load(),
		})
	}
	d.mu.Unlock()
	sort.Slice(v.Families, func(i, j int) bool { return v.Families[i].Name < v.Families[j].Name })
	return v
}
