package daemon

import (
	"errors"
	"sort"
	"sync"
)

// ErrSchedClosed is returned from Acquire when the daemon is draining.
var ErrSchedClosed = errors.New("daemon: scheduler closed")

// ticket is one queued request waiting for an execution slot.
type ticket struct {
	tenant  string
	family  string
	shard   bool
	granted bool
	ready   chan struct{}
}

// sched is the daemon's fair-share admission queue. Three invariants:
//
//   - at most maxRun requests execute concurrently;
//   - at most maxShard of those are shard coordinators (a coordinator
//     owns subprocess slots and the shared ready-timeout budget, so the
//     daemon serializes them rather than letting tenants oversubscribe
//     the machine);
//   - at most one request per family executes at a time, so per-family
//     store transactions and verdict-cache mutation never interleave.
//
// Admission is least-recently-granted across tenants: each grant
// stamps the tenant with a logical clock, and dispatch always offers
// the next free slot to the waiting tenant served longest ago — so a
// tenant flooding requests cannot starve another tenant's single
// queued request.
type sched struct {
	mu           sync.Mutex
	maxRun       int
	maxShard     int
	queues       map[string][]*ticket
	lastGrant    map[string]uint64
	clock        uint64
	running      int
	runningShard int
	busyFam      map[string]bool
	closed       bool
}

func newSched(maxRun, maxShard int) *sched {
	if maxRun < 1 {
		maxRun = 1
	}
	if maxShard < 1 {
		maxShard = 1
	}
	return &sched{
		maxRun:    maxRun,
		maxShard:  maxShard,
		queues:    map[string][]*ticket{},
		lastGrant: map[string]uint64{},
		busyFam:   map[string]bool{},
	}
}

// admissible reports whether t can run right now (mu held).
func (s *sched) admissible(t *ticket) bool {
	if s.running >= s.maxRun {
		return false
	}
	if t.shard && s.runningShard >= s.maxShard {
		return false
	}
	if t.family != "" && s.busyFam[t.family] {
		return false
	}
	return true
}

// dispatchLocked grants as many queue heads as fit. Each pass offers
// the slot to waiting tenants in least-recently-granted order (ties by
// name, so the order is deterministic); a full pass with no grant
// stops.
func (s *sched) dispatchLocked() {
	for {
		var order []string
		for tenant, q := range s.queues {
			if len(q) > 0 {
				order = append(order, tenant)
			}
		}
		sort.Slice(order, func(i, j int) bool {
			gi, gj := s.lastGrant[order[i]], s.lastGrant[order[j]]
			if gi != gj {
				return gi < gj
			}
			return order[i] < order[j]
		})
		grantedAny := false
		for _, tenant := range order {
			q := s.queues[tenant]
			t := q[0]
			if !s.admissible(t) {
				continue
			}
			s.queues[tenant] = q[1:]
			s.running++
			if t.shard {
				s.runningShard++
			}
			if t.family != "" {
				s.busyFam[t.family] = true
			}
			s.clock++
			s.lastGrant[tenant] = s.clock
			t.granted = true
			close(t.ready)
			grantedAny = true
			break
		}
		if !grantedAny {
			return
		}
	}
}

// Acquire blocks until the request is admitted, then returns a release
// function the caller must invoke exactly once when the request's work
// (including its store transaction) is done.
func (s *sched) Acquire(tenant, family string, shard bool) (release func(), err error) {
	if tenant == "" {
		tenant = "default"
	}
	t := &ticket{tenant: tenant, family: family, shard: shard, ready: make(chan struct{})}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSchedClosed
	}
	s.queues[tenant] = append(s.queues[tenant], t)
	s.dispatchLocked()
	s.mu.Unlock()

	<-t.ready
	s.mu.Lock()
	granted := t.granted
	s.mu.Unlock()
	if !granted {
		return nil, ErrSchedClosed
	}

	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.running--
			if t.shard {
				s.runningShard--
			}
			if t.family != "" {
				delete(s.busyFam, t.family)
			}
			s.dispatchLocked()
			s.mu.Unlock()
		})
	}, nil
}

// Depth returns the number of queued (not yet admitted) requests.
func (s *sched) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// Running returns the number of admitted, still-executing requests.
func (s *sched) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Close rejects every queued ticket and all future Acquires. Admitted
// requests keep their slots; their release functions still work.
func (s *sched) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for tenant, q := range s.queues {
		for _, t := range q {
			close(t.ready)
		}
		s.queues[tenant] = nil
	}
}
