package daemon

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// acquireAsync runs Acquire in a goroutine and reports admission via
// the returned channel.
func acquireAsync(s *sched, tenant, family string, shard bool) (admitted chan struct{}, release func(), errc chan error) {
	admitted = make(chan struct{})
	errc = make(chan error, 1)
	relc := make(chan func(), 1)
	go func() {
		rel, err := s.Acquire(tenant, family, shard)
		if err != nil {
			errc <- err
			return
		}
		relc <- rel
		close(admitted)
	}()
	return admitted, func() {
		(<-relc)()
	}, errc
}

func mustAdmit(t *testing.T, admitted chan struct{}, what string) {
	t.Helper()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: not admitted within 5s", what)
	}
}

func mustBlock(t *testing.T, admitted chan struct{}, what string) {
	t.Helper()
	select {
	case <-admitted:
		t.Fatalf("%s: admitted but should have blocked", what)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestSchedConcurrencyCap(t *testing.T) {
	s := newSched(2, 1)
	rel1, err := s.Acquire("a", "f1", false)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Acquire("a", "f2", false)
	if err != nil {
		t.Fatal(err)
	}
	adm3, rel3, _ := acquireAsync(s, "a", "f3", false)
	mustBlock(t, adm3, "third acquire at cap 2")
	rel1()
	mustAdmit(t, adm3, "third acquire after release")
	rel2()
	rel3()
	if got := s.Running(); got != 0 {
		t.Fatalf("running = %d after all releases, want 0", got)
	}
}

func TestSchedFamilySerialized(t *testing.T) {
	s := newSched(8, 8)
	rel1, err := s.Acquire("a", "fam", false)
	if err != nil {
		t.Fatal(err)
	}
	adm2, rel2, _ := acquireAsync(s, "b", "fam", false)
	mustBlock(t, adm2, "same-family acquire")
	// A different family is admissible while fam is busy.
	rel3, err := s.Acquire("c", "other", false)
	if err != nil {
		t.Fatal(err)
	}
	rel3()
	rel1()
	mustAdmit(t, adm2, "same-family acquire after release")
	rel2()
}

func TestSchedCoordinatorCap(t *testing.T) {
	s := newSched(8, 1)
	rel1, err := s.Acquire("a", "f1", true)
	if err != nil {
		t.Fatal(err)
	}
	adm2, rel2, _ := acquireAsync(s, "b", "f2", true)
	mustBlock(t, adm2, "second coordinator at cap 1")
	// A non-shard request passes the coordinator queue.
	rel3, err := s.Acquire("c", "f3", false)
	if err != nil {
		t.Fatal(err)
	}
	rel3()
	rel1()
	mustAdmit(t, adm2, "second coordinator after release")
	rel2()
}

// TestSchedTenantFairness floods tenant A's queue, then enqueues one
// request from tenant B: round-robin admission must grant B's request
// on the very next free slot rather than draining A's backlog first.
func TestSchedTenantFairness(t *testing.T) {
	s := newSched(1, 1)
	relRunning, err := s.Acquire("a", "f0", false)
	if err != nil {
		t.Fatal(err)
	}
	const flood = 10
	admA := make([]chan struct{}, flood)
	relA := make([]func(), flood)
	for i := 0; i < flood; i++ {
		admA[i], relA[i], _ = acquireAsync(s, "a", "", false)
		// Order A's queue deterministically.
		time.Sleep(5 * time.Millisecond)
	}
	admB, relB, _ := acquireAsync(s, "b", "", false)
	mustBlock(t, admB, "tenant b behind the flood")

	relRunning()
	mustAdmit(t, admB, "tenant b on the first free slot")
	for i := 0; i < flood; i++ {
		mustBlock(t, admA[i], "tenant a while b holds the slot")
		break
	}
	relB()
	for i := 0; i < flood; i++ {
		mustAdmit(t, admA[i], "tenant a backlog drain")
		relA[i]()
	}
}

func TestSchedCloseRejectsQueued(t *testing.T) {
	s := newSched(1, 1)
	rel, err := s.Acquire("a", "f", false)
	if err != nil {
		t.Fatal(err)
	}
	_, _, errc := acquireAsync(s, "b", "g", false)
	time.Sleep(50 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrSchedClosed) {
			t.Fatalf("queued acquire error = %v, want ErrSchedClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire not rejected after Close")
	}
	// The admitted request's release still works after Close.
	rel()
	if _, err := s.Acquire("c", "h", false); !errors.Is(err, ErrSchedClosed) {
		t.Fatalf("post-Close acquire error = %v, want ErrSchedClosed", err)
	}
}

// TestSchedStress hammers the scheduler from many tenants under -race,
// checking the caps hold at every admission.
func TestSchedStress(t *testing.T) {
	const maxRun = 3
	s := newSched(maxRun, 1)
	var peak, cur, violations int
	var mu sync.Mutex
	var wg sync.WaitGroup
	tenants := []string{"a", "b", "c", "d"}
	families := []string{"f1", "f2", ""}
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := s.Acquire(tenants[i%len(tenants)], families[i%len(families)], false)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			if cur > maxRun {
				violations++
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			rel()
		}(i)
	}
	wg.Wait()
	if violations > 0 {
		t.Fatalf("concurrency cap violated %d times (peak %d > %d)", violations, peak, maxRun)
	}
}
