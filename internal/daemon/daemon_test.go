package daemon

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	meissa "repro"
	"repro/internal/p4"
	"repro/internal/programs"
	"repro/internal/rulediff"
	"repro/internal/store"
)

// TestMain doubles as the out-of-process daemon helper for the
// kill-during-request test: with MEISSA_DAEMON_HELPER=1 the test binary
// runs a resident daemon (with a deliberately slow request path)
// instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("MEISSA_DAEMON_HELPER") == "1" {
		runHelper()
		return
	}
	os.Exit(m.Run())
}

func runHelper() {
	slow, _ := time.ParseDuration(os.Getenv("MEISSA_DAEMON_SLOW"))
	d, err := New(Config{
		Addr:        os.Getenv("MEISSA_DAEMON_ADDR"),
		StorePath:   os.Getenv("MEISSA_DAEMON_STORE"),
		SlowRequest: slow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	if err := d.Listen(); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	fmt.Println("READY", d.Addr())
	if err := d.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
}

// corpusProgram returns a corpus entry by name.
func corpusProgram(t *testing.T, name string) *programs.Program {
	t.Helper()
	for _, p := range programs.All() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("no corpus program %q", name)
	return nil
}

// coldTemplates renders a store-free, single-process cold run — the
// byte-identity reference every daemon response is diffed against.
func coldTemplates(t *testing.T, p *programs.Program) string {
	t.Helper()
	sys, err := meissa.New(p.Prog, p.Rules, nil, meissa.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := meissa.WriteTemplates(&buf, gen.Templates); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startDaemon runs an in-process daemon on a unix socket and returns a
// connected client. Everything is torn down with the test.
func startDaemon(t *testing.T, cfg Config) (*Daemon, *Client) {
	t.Helper()
	dir := t.TempDir()
	if cfg.Addr == "" {
		cfg.Addr = "unix://" + filepath.Join(dir, "d.sock")
	}
	if cfg.StorePath == "" {
		cfg.StorePath = filepath.Join(dir, "d.store")
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := d.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = d.Shutdown() })
	c, err := Dial(d.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return d, c
}

// loadFamily sends a load request built from a corpus program's printed
// sources — the same texts a remote client would ship.
func loadFamily(t *testing.T, c *Client, p *programs.Program, tenant string) {
	t.Helper()
	resp, err := c.Do(&Request{
		Op:      OpLoad,
		Tenant:  tenant,
		Family:  p.Name,
		Program: p4.Print(p.Prog),
		Rules:   p.Rules.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("load %s: %s", p.Name, resp.Error)
	}
	if resp.Load == nil || resp.Load.Family != p.Name {
		t.Fatalf("load %s: bad ack %+v", p.Name, resp.Load)
	}
}

func doGen(t *testing.T, c *Client, family, tenant string) *GenResponse {
	t.Helper()
	resp, err := c.Do(&Request{Op: OpGen, Tenant: tenant, Family: family})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("gen %s: %s", family, resp.Error)
	}
	if resp.Gen == nil {
		t.Fatalf("gen %s: no gen section", family)
	}
	return resp.Gen
}

// TestDaemonWarmGenByteIdentical is the tentpole guarantee: the second
// gen request for an unchanged family is answered entirely from warm
// state — zero live solver queries — and its rendered templates are
// byte-identical to a cold CLI-style run.
func TestDaemonWarmGenByteIdentical(t *testing.T) {
	p := corpusProgram(t, "gw-1")
	want := coldTemplates(t, p)
	_, c := startDaemon(t, Config{})
	loadFamily(t, c, p, "t1")

	cold := doGen(t, c, p.Name, "t1")
	if cold.Templates != want {
		t.Fatalf("cold daemon gen differs from direct cold run (%d vs %d bytes)", len(cold.Templates), len(want))
	}
	if cold.SMTCalls == 0 {
		t.Fatal("cold gen reported zero solver calls; warm detection would be vacuous")
	}

	warm := doGen(t, c, p.Name, "t1")
	if warm.Templates != want {
		t.Fatal("warm daemon gen not byte-identical to cold run")
	}
	if !warm.WarmHit {
		t.Fatalf("second gen not a warm hit (smt=%d journal=%d)", warm.SMTCalls, warm.JournalHits)
	}
	if warm.SMTCalls != 0 {
		t.Fatalf("warm gen made %d live solver calls, want 0", warm.SMTCalls)
	}
	if warm.JournalHits == 0 {
		t.Fatal("warm gen answered no interactions from the store journal")
	}
	if warm.Report == nil || warm.Report.Daemon == nil {
		t.Fatal("warm gen report missing daemon section")
	}
	if dr := warm.Report.Daemon; dr.WarmHits < 1 || dr.RequestsServed < 2 {
		t.Fatalf("daemon section counters off: %+v", dr)
	}
	if err := warm.Report.Validate(); err != nil {
		t.Fatalf("warm gen report fails validation: %v", err)
	}
}

// TestDaemonRegressInlineDelta sends a rule update as an inline
// regress: the store's baseline answers the unchanged paths, the result
// commits atomically, and the family's next gen is warm under the NEW
// rules — and still byte-identical to a cold run on them.
func TestDaemonRegressInlineDelta(t *testing.T) {
	p := corpusProgram(t, "gw-1")
	_, c := startDaemon(t, Config{})
	loadFamily(t, c, p, "t1")
	doGen(t, c, p.Name, "t1") // seed the store baseline

	newRules, n := rulediff.MutateArgs(p.Rules, 2)
	if n == 0 {
		t.Fatal("mutation produced no change")
	}
	resp, err := c.Do(&Request{
		Op: OpRegress, Tenant: "t1", Family: p.Name,
		Regress: &RegressParams{NewRules: newRules.String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("regress: %s", resp.Error)
	}
	if resp.Regress == nil || resp.Regress.NumTemplates == 0 {
		t.Fatalf("regress: bad response %+v", resp.Regress)
	}

	// Reference: a cold run on the new rules.
	sys, err := meissa.New(p.Prog, newRules, nil, meissa.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := meissa.WriteTemplates(&want, gen.Templates); err != nil {
		t.Fatal(err)
	}
	if resp.Regress.Templates != want.String() {
		t.Fatal("incremental regress templates not byte-identical to cold run on new rules")
	}

	warm := doGen(t, c, p.Name, "t1")
	if warm.Templates != want.String() {
		t.Fatal("post-regress gen not byte-identical to cold run on new rules")
	}
	if !warm.WarmHit {
		t.Fatalf("post-regress gen not warm (smt=%d)", warm.SMTCalls)
	}
}

func TestDaemonStatusAndUnload(t *testing.T) {
	p := corpusProgram(t, "Router")
	d, c := startDaemon(t, Config{})
	loadFamily(t, c, p, "")
	doGen(t, c, p.Name, "")

	resp, err := c.Do(&Request{Op: OpStatus})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Status == nil {
		t.Fatalf("status: %+v", resp)
	}
	st := resp.Status
	if st.RequestsServed < 2 || len(st.Families) != 1 || st.Families[0].Name != p.Name || st.Families[0].Gens != 1 {
		t.Fatalf("status: %+v (families %+v)", st, st.Families)
	}
	if st.Addr != d.Addr() {
		t.Fatalf("status addr %q, want %q", st.Addr, d.Addr())
	}

	resp, err = c.Do(&Request{Op: OpUnload, Family: p.Name})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("unload: %s", resp.Error)
	}
	resp, err = c.Do(&Request{Op: OpGen, Family: p.Name})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("gen on unloaded family succeeded")
	}
}

// TestDaemonMultiTenantHammer drives two families from several
// concurrent clients under distinct tenants: every response must be
// byte-identical to the sequential cold reference, and the run must
// finish (no tenant starves) — the -race build checks the warm-state
// sharing for data races.
func TestDaemonMultiTenantHammer(t *testing.T) {
	pa := corpusProgram(t, "gw-1")
	pb := corpusProgram(t, "Router")
	wantA := coldTemplates(t, pa)
	wantB := coldTemplates(t, pb)
	d, c0 := startDaemon(t, Config{MaxConcurrent: 2})
	loadFamily(t, c0, pa, "seed")
	loadFamily(t, c0, pb, "seed")

	const clients = 4
	const reqs = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*reqs)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(d.Addr(), 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			tenant := fmt.Sprintf("tenant-%d", i)
			for r := 0; r < reqs; r++ {
				fam, want := pa.Name, wantA
				if (i+r)%2 == 1 {
					fam, want = pb.Name, wantB
				}
				resp, err := c.Do(&Request{Op: OpGen, Tenant: tenant, Family: fam})
				if err != nil {
					errs <- err
					return
				}
				if !resp.OK {
					errs <- fmt.Errorf("gen %s: %s", fam, resp.Error)
					return
				}
				if resp.Gen.Templates != want {
					errs <- fmt.Errorf("client %d req %d: %s templates diverge from sequential reference", i, r, fam)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	resp, err := c0.Do(&Request{Op: OpStatus})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Status.RequestsServed; got < clients*reqs {
		t.Fatalf("requests served %d, want >= %d", got, clients*reqs)
	}
	// Everything after the two cold seeds must have been warm.
	if got := resp.Status.WarmHits; got < clients*reqs-2 {
		t.Fatalf("warm hits %d, want >= %d", got, clients*reqs-2)
	}
}

// TestDaemonShutdownDrain proves a SIGTERM-style Shutdown lets the
// in-flight request complete and deliver its response while later
// requests are refused.
func TestDaemonShutdownDrain(t *testing.T) {
	p := corpusProgram(t, "Router")
	d, c := startDaemon(t, Config{SlowRequest: 300 * time.Millisecond})
	loadFamily(t, c, p, "")

	type result struct {
		resp *Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := c.Do(&Request{Op: OpGen, Family: p.Name})
		done <- result{resp, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the gen enter its slot
	if err := d.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight gen during drain: %v", res.err)
	}
	if !res.resp.OK {
		t.Fatalf("in-flight gen during drain failed: %s", res.resp.Error)
	}
	if res.resp.Gen.NumTemplates == 0 {
		t.Fatal("drained gen returned no templates")
	}
	// The daemon is gone: a fresh dial must fail fast.
	if _, err := Dial(d.Addr(), 200*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestDaemonKillDuringRequestStoreRecovers SIGKILLs a daemon process
// mid-request and proves the store is immediately reopenable — the
// advisory lock dies with the process — and a fresh daemon serves the
// same store cleanly.
func TestDaemonKillDuringRequestStoreRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a helper process")
	}
	p := corpusProgram(t, "Router")
	dir := t.TempDir()
	storePath := filepath.Join(dir, "kill.store")
	addr := "unix://" + filepath.Join(dir, "kill.sock")

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"MEISSA_DAEMON_HELPER=1",
		"MEISSA_DAEMON_ADDR="+addr,
		"MEISSA_DAEMON_STORE="+storePath,
		"MEISSA_DAEMON_SLOW=10s",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	ready := make([]byte, 64)
	if _, err := stdout.Read(ready); err != nil {
		t.Fatalf("helper ready: %v", err)
	}

	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadFamily(t, c, p, "")
	// While the helper daemon holds the store lock, a second opener is
	// refused — the flock is live.
	if _, err := store.Open(storePath, store.Options{}); err == nil {
		t.Fatal("store opened while the daemon holds the lock")
	}

	// Fire a gen that will sit in the 10s slow path, then kill the
	// daemon mid-request.
	go func() {
		_, _ = c.Do(&Request{Op: OpGen, Family: p.Name})
	}()
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// The kernel released the advisory lock with the process: the store
	// opens (recovering whatever the WAL holds) without ErrStoreBusy.
	st, err := store.Open(storePath, store.Options{})
	if err != nil {
		t.Fatalf("store did not recover after SIGKILL: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// And a fresh daemon serves the same store end to end.
	_, c2 := startDaemon(t, Config{StorePath: storePath})
	loadFamily(t, c2, p, "")
	gen := doGen(t, c2, p.Name, "")
	if gen.NumTemplates == 0 {
		t.Fatal("post-recovery gen returned no templates")
	}
}
