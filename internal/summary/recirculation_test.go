package summary

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/p4"
	"repro/internal/sym"
)

// TestRecirculationUnrolled covers §4's recirculation handling:
// "Recirculation and resubmission are similar to multi-pipelines, because
// operators manually name unrolled pipelines." A program that
// recirculates once is expressed as ig → eg → ig_round2 → eg_round2, and
// code summary treats the rounds as ordinary pipelines.
func TestRecirculationUnrolled(t *testing.T) {
	src := `
program recirc;
header h { bit<8> hops; bit<8> kind; }
metadata { bit<1> again; }
parser prs { state start { extract(h); transition accept; } }
control ig1 {
  apply {
    h.hops = h.hops + 1;
    if (h.kind == 7) {
      meta.again = 1;
    } else {
      meta.again = 0;
    }
  }
}
control eg1 { apply { } }
control ig2 {
  apply {
    h.hops = h.hops + 1;
    meta.again = 0;
  }
}
control eg2 { apply { } }
pipeline ig       { parser = prs; control = ig1; }
pipeline eg       { control = eg1; kind = egress; }
pipeline ig_rnd2  { control = ig2; }
pipeline eg_rnd2  { control = eg2; kind = egress; }
topology {
  entry ig;
  ig -> eg;
  eg -> ig_rnd2 when meta.again == 1;
  eg -> exit when meta.again == 0;
  ig_rnd2 -> eg_rnd2;
  eg_rnd2 -> exit;
}
`
	prog := p4.MustParse(src)
	g, err := cfg.Build(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Pipelines) != 4 {
		t.Fatalf("pipelines = %d, want 4 (unrolled rounds)", len(g.Pipelines))
	}
	if _, err := Summarize(g, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	res, err := sym.Explore(sym.Config{Graph: g, Options: sym.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// Two valid end-to-end paths: one round (kind != 7) and two rounds
	// (kind == 7).
	var oneHop, twoHops int
	for _, tm := range res.Templates {
		val, err := expr.EvalArith(tm.Final["hdr.h.hops"], expr.State{"hdr.h.hops": 0, "hdr.h.kind": tm.Model["hdr.h.kind"]})
		if err != nil {
			t.Fatalf("template %d: %v", tm.ID, err)
		}
		switch val {
		case 1:
			oneHop++
		case 2:
			twoHops++
		default:
			t.Errorf("template %d: hops = %d", tm.ID, val)
		}
	}
	if oneHop == 0 || twoHops == 0 {
		t.Fatalf("recirculated paths missing: %d one-round, %d two-round", oneHop, twoHops)
	}
}

// TestRegisterModeledAsField covers §4's register treatment: "the
// register reg[0] is modeled as a header field REG:reg-POS:0", with the
// initial cell value treated as an unbounded stateless variable.
func TestRegisterModeledAsField(t *testing.T) {
	src := `
program regs;
header h { bit<16> x; }
register bit<16> counts[4];
metadata { bit<16> c; }
parser prs { state start { extract(h); transition accept; } }
control c {
  apply {
    meta.c = reg_read(counts, 2);
    if (meta.c > 100) {
      h.x = 1;
    } else {
      h.x = 2;
    }
    reg_write(counts, 2, meta.c + 1);
  }
}
pipeline p { parser = prs; control = c; }
`
	prog := p4.MustParse(src)
	g, err := cfg.Build(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	regVar := p4.RegisterVar("counts", 2)
	if _, ok := g.Vars[regVar]; !ok {
		t.Fatalf("register cell %s not modeled as a field variable", regVar)
	}
	if _, err := Summarize(g, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	res, err := sym.Explore(sym.Config{Graph: g, Options: sym.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// Both branches on the register value must be covered (the initial
	// cell value is a free symbolic variable).
	seen := map[uint64]bool{}
	for _, tm := range res.Templates {
		if c, ok := tm.Final["hdr.h.x"].(expr.Const); ok {
			seen[c.Val] = true
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("register-dependent branches not both covered: %v", seen)
	}
	// The write-back must be expressed against the register's entry
	// value.
	for _, tm := range res.Templates {
		val := tm.Final[regVar]
		if val == nil {
			t.Fatal("register write-back missing from final state")
		}
		got, err := expr.EvalArith(val, expr.State{regVar: 41})
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("write-back = %d for entry value 41, want 42", got)
		}
	}
}
