package summary

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/sym"
)

// facts is the must-hold information at a point in the pipeline graph: the
// public pre-condition lattice. It refines Algorithm 2's per-pipeline
// intersection (lines 4–7) into a compositional dataflow over region
// summaries: instead of enumerating every path from the program entry to
// each pipeline entry (which costs O(k · m^k) prefix explorations), each
// region's summary contributes its guaranteed effects once, and entry
// facts are the meet over incoming edges. The meet is always a subset of
// the true all-paths intersection, so filtering stays sound (Lemma 1
// requires only that the pre-condition encapsulate every valid path).
type facts struct {
	// values maps variables to constants guaranteed on every live path.
	// Constants are frame-invariant, so they may seed the within-pipeline
	// value stack directly.
	values expr.Subst
	// conds are conjuncts guaranteed on every live path, keyed by their
	// rendering; they reference only virgin variables (never assigned on
	// any path), making them frame-invariant too.
	conds map[string]expr.Bool
	// modified is the set of variables possibly assigned on some path.
	modified map[expr.Var]bool
}

func newFacts() *facts {
	return &facts{values: expr.Subst{}, conds: map[string]expr.Bool{}, modified: map[expr.Var]bool{}}
}

func (f *facts) clone() *facts {
	nf := newFacts()
	for k, v := range f.values {
		nf.values[k] = v
	}
	for k, v := range f.conds {
		nf.conds[k] = v
	}
	for k := range f.modified {
		nf.modified[k] = true
	}
	return nf
}

// markModified records an assignment to v: its constant (if any) is
// dropped unless re-established, and conditions mentioning it become
// frame-variant and are discarded.
func (f *facts) markModified(v expr.Var) {
	f.modified[v] = true
	delete(f.values, v)
	for k, c := range f.conds {
		vars := map[expr.Var]expr.Width{}
		expr.VarsOfBool(c, vars)
		if _, ok := vars[v]; ok {
			delete(f.conds, k)
		}
	}
}

// addCond records a guaranteed conjunct if it is stable (virgin vars
// only).
func (f *facts) addCond(c expr.Bool) {
	vars := map[expr.Var]expr.Width{}
	expr.VarsOfBool(c, vars)
	for v := range vars {
		if f.modified[v] {
			return
		}
	}
	f.conds[c.String()] = c
}

// meetFacts intersects two fact sets; nil means unreachable and is the
// identity.
func meetFacts(a, b *facts) *facts {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := newFacts()
	for v, val := range a.values {
		if bv, ok := b.values[v]; ok && expr.EqualArith(val, bv) {
			out.values[v] = val
		}
	}
	for k, c := range a.conds {
		if _, ok := b.conds[k]; ok {
			out.conds[k] = c
		}
	}
	for v := range a.modified {
		out.modified[v] = true
	}
	for v := range b.modified {
		out.modified[v] = true
	}
	// Conditions must stay virgin under the merged modified set.
	for k, c := range out.conds {
		vars := map[expr.Var]expr.Width{}
		expr.VarsOfBool(c, vars)
		for v := range vars {
			if out.modified[v] {
				delete(out.conds, k)
				break
			}
		}
	}
	return out
}

// sortedConds renders the condition set deterministically.
func (f *facts) sortedConds() []expr.Bool {
	keys := make([]string, 0, len(f.conds))
	for k := range f.conds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]expr.Bool, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.conds[k])
	}
	return out
}

// flow runs the pre-condition dataflow over the glue structure of the
// graph (traffic-manager guards, drop checks, init chain) and the region
// summaries.
type flow struct {
	g          *cfg.Graph
	preds      map[cfg.NodeID][]cfg.NodeID
	exitRegion map[cfg.NodeID]string
	regionOut  map[string]*facts
	memo       map[cfg.NodeID]*facts
	memoSet    map[cfg.NodeID]bool
}

// newFlow captures the predecessor structure once; summarization rewrites
// only region interiors, never the glue.
func newFlow(g *cfg.Graph, initConds []expr.Bool) *flow {
	fl := &flow{
		g:          g,
		preds:      map[cfg.NodeID][]cfg.NodeID{},
		exitRegion: map[cfg.NodeID]string{},
		regionOut:  map[string]*facts{},
		memo:       map[cfg.NodeID]*facts{},
		memoSet:    map[cfg.NodeID]bool{},
	}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			fl.preds[s] = append(fl.preds[s], n.ID)
		}
	}
	for _, r := range g.Pipelines {
		fl.exitRegion[r.Exit] = r.Name
	}
	// The program entry carries the intent's assume clauses (§7: "we
	// group pre-conditions according to packet type").
	entry := newFacts()
	for _, c := range initConds {
		for _, cj := range expr.Conjuncts(c) {
			entry.addCond(cj)
		}
	}
	fl.memo[g.Entry] = applyGlueNode(g.Node(g.Entry), entry)
	fl.memoSet[g.Entry] = true
	return fl
}

// factsAfter returns the facts holding immediately after the node, or nil
// when the node is unreachable. Region exits resolve to the region's
// summary-out facts; other nodes are glue and are interpreted abstractly.
func (fl *flow) factsAfter(id cfg.NodeID) *facts {
	if name, ok := fl.exitRegion[id]; ok {
		return fl.regionOut[name]
	}
	if fl.memoSet[id] {
		return fl.memo[id]
	}
	fl.memoSet[id] = true // break accidental cycles defensively
	var in *facts
	for _, p := range fl.preds[id] {
		in = meetFacts(in, fl.factsAfter(p))
	}
	var out *facts
	if in != nil {
		out = applyGlueNode(fl.g.Node(id), in.clone())
	}
	fl.memo[id] = out
	return out
}

// applyGlueNode interprets one glue node abstractly. Returns nil when the
// node's predicate is definitely false under the incoming constants (a
// dead edge, e.g. a traffic-manager guard excluded by the upstream
// summary).
func applyGlueNode(n *cfg.Node, f *facts) *facts {
	switch n.Kind {
	case cfg.Predicate:
		cond := expr.SubstBool(n.Pred, f.values)
		if expr.EqualBool(cond, expr.False) {
			return nil
		}
		if !expr.EqualBool(cond, expr.True) {
			f.addCond(cond)
		}
	case cfg.Action:
		val := expr.SubstArith(n.Val, f.values)
		f.markModified(n.Var)
		if c, ok := val.(expr.Const); ok {
			f.values[n.Var] = c
		}
	case cfg.Hash, cfg.Checksum:
		f.markModified(n.Var)
	}
	return f
}

// entryFacts computes the facts at a region's entry: the meet over its
// incoming edges. nil means the region is unreachable.
func (fl *flow) entryFacts(region *cfg.Region) (*facts, int) {
	var in *facts
	live := 0
	for _, p := range fl.preds[region.Entry] {
		pf := fl.factsAfter(p)
		if pf != nil {
			live++
		}
		in = meetFacts(in, pf)
	}
	if in == nil {
		return nil, 0
	}
	// Apply the region entry marker itself (a True predicate).
	return applyGlueNode(fl.g.Node(region.Entry), in.clone()), live
}

// setRegionOut records a region's out-facts from its summarized chains:
// the meet over the non-dropping chains of the entry facts updated by
// each chain's effects, plus the chain-common stable constraints.
func (fl *flow) setRegionOut(region *cfg.Region, in *facts, templates []*sym.Template, initC []expr.Bool, initV expr.Subst, g *cfg.Graph) {
	var out *facts
	for _, t := range templates {
		if t.Dropped {
			continue // drop chains never feed downstream pipelines
		}
		f := in.clone()
		// Effects: constants survive, symbolic values invalidate.
		for v, val := range t.Final {
			if v.IsAux() {
				continue
			}
			entryVal, wasPublic := initV[v]
			if !wasPublic {
				entryVal = expr.V(v, g.Vars[v])
			}
			if expr.EqualArith(val, entryVal) {
				continue // unchanged
			}
			f.markModified(v)
			if c, ok := val.(expr.Const); ok {
				f.values[v] = c
			}
		}
		// Constraints collected inside the pipeline (skip the seeded
		// public pre-conditions, already in f.conds).
		for _, c := range t.Constraints[len(initC):] {
			for _, cj := range expr.Conjuncts(c) {
				f.addCond(cj)
			}
		}
		out = meetFacts(out, f)
	}
	fl.regionOut[region.Name] = out
}
