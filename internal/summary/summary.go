// Package summary implements Meissa's core contribution: the code summary
// technique of §3.3 (Algorithm 2). It decomposes a multi-pipeline CFG
// into individual pipelines, summarizes each pipeline into a succinct set
// of valid-path encodings, and rewrites the graph in place — preserving
// every valid path and its path condition (the loop invariant of §3.4),
// while reducing test case generation from O(n^k) to O(k·n) (Appendix A).
//
// Two mechanisms combine local and global information:
//
//   - intra-pipeline redundancy elimination: symbolic execution within the
//     pipeline discards invalid paths stemming from the pipeline's own code
//     logic (Figure 7: 10,000 possible paths → 100 valid ones);
//   - inter-pipeline public pre-condition filtering: the conditions common
//     to all valid paths from the program entry to the pipeline entry seed
//     the within-pipeline execution, pruning paths that can never be
//     reached (Figure 8: proto == UDP is discarded under the public
//     pre-condition proto == TCP).
package summary

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/smt"
	"repro/internal/sym"
)

// Options configure summarization.
type Options struct {
	// Sym configures the symbolic executions used for prefix and
	// within-pipeline exploration.
	Sym sym.Options
	// UsePreconditions enables inter-pipeline public pre-condition
	// filtering. Disabling it (intra-pipeline elimination only) is the
	// ablation configuration.
	UsePreconditions bool
	// InitConstraints are seeded into every prefix exploration — the
	// intent's assume clauses, and the packet-type grouping of §7
	// ("we group pre-conditions according to packet type").
	InitConstraints []expr.Bool
}

// DefaultOptions is the production configuration.
func DefaultOptions() Options {
	o := sym.DefaultOptions()
	o.WantModels = false // summaries need conditions, not witnesses
	return Options{Sym: o, UsePreconditions: true}
}

// PipelineStat records the effect of summarizing one pipeline.
type PipelineStat struct {
	Name string
	// PossibleBefore / PossibleAfter are the region's possible-path
	// counts before and after summarization (log10).
	PossibleBefore float64
	PossibleAfter  float64
	// ValidPaths is the number of valid paths found within the pipeline —
	// the size of its summary.
	ValidPaths int
	// PrefixPaths is the number of valid paths from the program entry to
	// the pipeline entry used to compute the public pre-condition.
	PrefixPaths int
	// PublicConstraints is the number of conjuncts in the public
	// pre-condition.
	PublicConstraints int
	// Unknowns / BudgetExhausted report solver queries within this
	// pipeline's exploration that came back undecided (and, of those, the
	// ones cut off by the per-query SearchBudget/CheckTimeout). Undecided
	// paths are conservatively kept in the summary, so a non-zero count
	// means the summary may be a superset of the valid-path set but never
	// misses a valid path.
	Unknowns        uint64
	BudgetExhausted uint64
}

// Stats aggregates summarization work.
type Stats struct {
	Pipelines     []PipelineStat
	SMT           smt.Stats
	PathsExplored uint64
	// PrunedPaths counts prefixes cut by early termination across all
	// prefix and within-pipeline explorations.
	PrunedPaths uint64
	// Truncated reports that some exploration hit its path or time
	// budget, so the summary may be incomplete.
	Truncated bool
	// Recovered counts per-path panics recovered across all explorations
	// (Strict off); PathErrors holds the recorded details, capped at the
	// sym layer's limit.
	Recovered  uint64
	PathErrors []*sym.PathError
	// JournalHits counts solver interactions answered from a resume
	// journal instead of being re-solved.
	JournalHits uint64
}

// Summarize rewrites g in place, pipeline by pipeline in topological order
// (Algorithm 2 lines 1–25). After it returns, running the basic framework
// (Algorithm 1) over g generates test case templates with full path
// coverage (Corollary 1).
func Summarize(g *cfg.Graph, opts Options) (*Stats, error) {
	stats := &Stats{}
	var fl *flow
	if opts.UsePreconditions {
		fl = newFlow(g, opts.InitConstraints)
	}
	for _, region := range g.Pipelines {
		sp := obs.Begin("generate/summary/" + region.Name)
		st, err := summarizeRegion(g, region, opts, fl, stats)
		dur := sp.End()
		if err != nil {
			return nil, fmt.Errorf("summary: pipeline %s: %w", region.Name, err)
		}
		stats.Pipelines = append(stats.Pipelines, *st)
		obs.Progressf("summary: %s summarized in %v (10^%.1f -> 10^%.1f paths)",
			region.Name, dur, st.PossibleBefore, st.PossibleAfter)
	}
	return stats, nil
}

func summarizeRegion(g *cfg.Graph, region *cfg.Region, opts Options, fl *flow, agg *Stats) (*PipelineStat, error) {
	st := &PipelineStat{Name: region.Name}
	st.PossibleBefore = log10Big(g, region)

	// --- Compute public pre-conditions (Algorithm 2 lines 4–7) ---
	// The pre-conditions are the meet, over every path from the program
	// entry to this pipeline's entry, of the conditions and values those
	// paths establish. The flow computes this compositionally from the
	// already-summarized upstream pipelines ("Because of the topological
	// sorting, all pipelines along the path are already summarized to
	// reduce the search overhead").
	var initC []expr.Bool
	initV := expr.Subst{}
	prefixPaths := 0
	if fl != nil {
		in, live := fl.entryFacts(region)
		if in == nil {
			// Unreachable pipeline: clear it entirely.
			g.Node(region.Entry).Succs = []cfg.NodeID{region.Exit}
			st.PossibleAfter = log10Big(g, region)
			fl.regionOut[region.Name] = nil
			return st, nil
		}
		prefixPaths = live
		initC = in.sortedConds()
		for v, val := range in.values {
			initV[v] = val
		}
		st.PublicConstraints = len(initC)
	}
	st.PrefixPaths = prefixPaths

	// --- Find valid paths within the pipeline (Algorithm 2 lines 8–9) ---
	innerOpts := opts.Sym
	innerRes, err := sym.Explore(sym.Config{
		Graph:           g,
		Start:           region.Entry,
		StopAt:          map[cfg.NodeID]bool{region.Exit: true},
		InitConstraints: initC,
		InitValues:      initV,
		Options:         innerOpts,
	})
	if err != nil {
		return nil, err
	}
	accumulate(agg, innerRes)
	st.ValidPaths = len(innerRes.Templates)
	st.Unknowns = innerRes.SMT.Unknowns
	st.BudgetExhausted = innerRes.SMT.BudgetExhausted

	// --- Summarize the pipeline (Algorithm 2 lines 10–25) ---
	entryNode := g.Node(region.Entry)
	entryNode.Succs = nil // pipeline.clear()

	for _, t := range innerRes.Templates {
		head, tail := encodePath(g, region, t, initC, initV)
		entryNode.Succs = append(entryNode.Succs, head)
		g.Link(tail, region.Exit)
	}
	if len(innerRes.Templates) == 0 {
		// No valid path through the pipeline under the public
		// pre-condition: sever it.
		entryNode.Succs = nil
	}
	if fl != nil {
		// Record this region's guaranteed effects for downstream
		// pre-condition computation.
		in, _ := fl.entryFacts(region)
		if in == nil {
			in = newFacts()
		}
		fl.setRegionOut(region, in, innerRes.Templates, initC, initV, g)
	}
	st.PossibleAfter = log10Big(g, region)
	return st, nil
}

// encodePath builds the succinct chain for one valid path: a predicate
// node carrying the conjunction of the constraints collected inside the
// pipeline, then @var saves for every changed variable, then the
// simultaneous assignment encoded with entry-value auxiliaries
// (Algorithm 2 lines 13–24 and the @srcPort example of §3.3).
// It returns the chain's head and tail node IDs.
func encodePath(g *cfg.Graph, region *cfg.Region, t *sym.Template, initC []expr.Bool, initV expr.Subst) (head, tail cfg.NodeID) {
	// Chain layout: saves → hash/checksum obligations → guard predicate →
	// assignments. The obligations must precede the predicate because the
	// path condition may constrain their outputs (e.g. an ECMP range
	// match over a hash value): the outer execution has to re-bind the
	// hash symbol before the constraint over it is asserted.
	head = cfg.None
	tail = cfg.None
	appendNode := func(n *cfg.Node) {
		// Every chain node inherits the template's rule-dependency tags:
		// the chain stands in for a concrete path through the pipeline's
		// tables, so final-pass walks crossing it must accumulate the same
		// dependencies the folded path had (journal index records and
		// verdict-cache tags for incremental regression both rely on this).
		n.Deps = t.Deps
		if head == cfg.None {
			head = n.ID
		} else {
			g.Link(tail, n.ID)
		}
		tail = n.ID
	}

	// Changed variables: final value differs from the entry value. The
	// entry value of v is initV[v] when public, else the free symbol v.
	var changed []expr.Var
	for v, val := range t.Final {
		if v.IsAux() {
			// Auxiliaries from earlier summaries are chain-local
			// temporaries: each chain saves its own before reading them,
			// so they never carry live values across pipelines.
			continue
		}
		entryVal, wasPublic := initV[v]
		if !wasPublic {
			entryVal = expr.V(v, g.Vars[v])
		}
		if !expr.EqualArith(val, entryVal) {
			changed = append(changed, v)
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })

	// Rename map: references to changed variables inside final values must
	// read the entry snapshot (@var), since the assignments in a CFG lack
	// atomicity (§3.3's srcPort/dstPort example).
	ren := map[expr.Var]expr.Var{}
	for _, v := range changed {
		ren[v] = v.Aux()
	}

	// Saves: @v ← v for every changed variable.
	for _, v := range changed {
		w := g.Vars[v]
		g.Vars[v.Aux()] = w
		appendNode(g.AddAction(v.Aux(), expr.V(v, w), region.Name, "save entry value of "+string(v)))
	}
	// Re-emit deferred hash/checksum obligations as opaque nodes, before
	// the guard predicate and the assignments that consume their outputs,
	// so the final full-program execution re-evaluates them (possibly
	// concretely, if the outer context fixes their inputs).
	for _, ob := range t.HashObligations {
		inputs := make([]expr.Arith, len(ob.Inputs))
		for i, in := range ob.Inputs {
			inputs[i] = expr.RenameArith(in, ren)
		}
		if ob.Kind == cfg.Hash {
			appendNode(g.AddHash(ob.Var, ob.Width, inputs, region.Name, "summary hash"))
		} else {
			appendNode(g.AddChecksum(ob.Var, ob.Width, inputs, region.Name, "summary checksum"))
		}
	}
	// Guard: the conjunction of the constraints collected inside the
	// pipeline, stripped of the seeded public pre-conditions (the first
	// len(initC) entries). Entry-value references to changed variables go
	// through the @ snapshots.
	inner := t.Constraints[len(initC):]
	pred := expr.RenameBool(expr.AndAll(inner), ren)
	appendNode(g.AddPredicate(pred, region.Name, fmt.Sprintf("summary path %d of %s", t.ID, region.Name)))
	// Assignments: v ← final value with changed references renamed to
	// their @ snapshots.
	for _, v := range changed {
		val := expr.RenameArith(t.Final[v], ren)
		appendNode(g.AddAction(v, val, region.Name, "summary assign "+string(v)))
	}
	return head, tail
}

func accumulate(agg *Stats, r *sym.Result) {
	agg.SMT.Add(r.SMT)
	agg.PathsExplored += r.PathsExplored
	agg.PrunedPaths += r.PrunedPaths
	if r.Truncated {
		agg.Truncated = true
	}
	agg.Recovered += r.Recovered
	agg.PathErrors = append(agg.PathErrors, r.PathErrors...)
	agg.JournalHits += r.JournalHits
}

// log10Big computes log10 of the region's possible-path count.
func log10Big(g *cfg.Graph, region *cfg.Region) float64 {
	n := g.RegionPaths(region)
	if n.Sign() == 0 {
		return 0
	}
	f := new(big.Float).SetInt(n)
	mant := new(big.Float)
	exp := f.MantExp(mant)
	m, _ := mant.Float64()
	if m <= 0 {
		return 0
	}
	return math.Log10(m) + float64(exp)*math.Log10(2)
}
