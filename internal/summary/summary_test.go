package summary

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/expr"
	"repro/internal/p4"
	"repro/internal/rules"
	"repro/internal/sym"
)

// twoPipeSrc is a two-pipeline program: the ingress classifies on protocol
// and sets an egress port; the egress rewrites a MAC keyed on the port.
// The ingress establishes proto == TCP on every path to the egress
// (Figure 8's public pre-condition), and the port/MAC chain is the
// Figure 7 correlated-table structure.
const twoPipeSrc = `
header ip { bit<8> proto; bit<32> dst; }
header eth { bit<48> mac; }
metadata { bit<9> port; }
parser prs { state start { extract(ip); transition accept; } }
action set_port(bit<9> p) { meta.port = p; }
action set_mac(bit<48> m) { eth.mac = m; }
action nop() { }
table route {
  key = { ip.dst : exact; }
  actions = { set_port; }
  default_action = nop();
}
table mac_rewrite {
  key = { meta.port : exact; }
  actions = { set_mac; }
  default_action = nop();
}
control cin {
  apply {
    if (ip.proto == 6) {
      route.apply();
    } else {
      mark_drop();
    }
  }
}
control cout {
  apply {
    if (ip.proto == 6) {
      mac_rewrite.apply();
    } else {
      if (ip.proto == 17) {
        eth.mac = 0xdead;
      }
    }
  }
}
pipeline ig { parser = prs; control = cin; }
pipeline eg { control = cout; kind = egress; }
topology {
  entry ig;
  ig -> eg;
  eg -> exit;
}
`

func twoPipeRules(n int) *rules.Set {
	rs := rules.NewSet()
	for i := 1; i <= n; i++ {
		rs.Add("route", rules.Rule("set_port", []uint64{uint64(i)}, rules.E("ip.dst", rules.HostIP(i))))
		rs.Add("mac_rewrite", rules.Rule("set_mac", []uint64{0x1000 + uint64(i)}, rules.E("meta.port", uint64(i))))
	}
	return rs
}

func buildTwoPipe(t *testing.T, n int) *cfg.Graph {
	t.Helper()
	prog := p4.MustParse(twoPipeSrc)
	g, err := cfg.Build(prog, twoPipeRules(n))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func exploreAll(t *testing.T, g *cfg.Graph) *sym.Result {
	t.Helper()
	res, err := sym.Explore(sym.Config{Graph: g, Options: sym.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSummaryPreservesValidPathCount(t *testing.T) {
	const n = 8
	plain := buildTwoPipe(t, n)
	before := exploreAll(t, plain)

	summarized := buildTwoPipe(t, n)
	stats, err := Summarize(summarized, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	after := exploreAll(t, summarized)

	if len(before.Templates) != len(after.Templates) {
		t.Fatalf("valid path count changed: %d before, %d after summary",
			len(before.Templates), len(after.Templates))
	}
	if len(stats.Pipelines) != 2 {
		t.Fatalf("pipeline stats = %d", len(stats.Pipelines))
	}
}

func TestSummaryModelsStillSatisfyOriginal(t *testing.T) {
	// Every model produced on the summarized graph must drive a valid
	// concrete execution of the ORIGINAL graph — the essence of the §3.4
	// loop invariant.
	const n = 5
	orig := buildTwoPipe(t, n)
	summarized := buildTwoPipe(t, n)
	if _, err := Summarize(summarized, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	after := exploreAll(t, summarized)
	if len(after.Templates) == 0 {
		t.Fatal("no templates after summary")
	}
	for _, tm := range after.Templates {
		st := completeModel(orig, tm.Model)
		// Concretely execute the original graph with the model.
		final, ok := run(t, orig, st)
		if !ok {
			t.Fatalf("template %d model does not execute on original graph", tm.ID)
		}
		// The final concrete state must agree with the template's final
		// symbolic state on every variable the template specifies.
		for v, valExpr := range tm.Final {
			if v.IsAux() {
				continue
			}
			want, err := expr.EvalArith(valExpr, st)
			if err != nil {
				continue // references a free/hash variable not in the model
			}
			got, has := final[v]
			if !has {
				continue
			}
			if got != want {
				t.Errorf("template %d: %s = %d on original, template predicts %d", tm.ID, v, got, want)
			}
		}
	}
}

// completeModel extends a model with zero for every graph variable so
// concrete execution never hits unbound variables.
func completeModel(g *cfg.Graph, m expr.State) expr.State {
	st := expr.State{}
	for v := range g.Vars {
		st[v] = 0
	}
	for v, val := range m {
		st[v] = val
	}
	return st
}

// run concretely executes a CFG under a state, following the Figure 4
// semantics: predicates gate execution, actions update state. Returns the
// final state and whether a complete path was executed.
func run(t *testing.T, g *cfg.Graph, st expr.State) (expr.State, bool) {
	t.Helper()
	cur := st.Clone()
	id := g.Entry
	for steps := 0; steps < 100000; steps++ {
		n := g.Node(id)
		switch n.Kind {
		case cfg.Predicate:
			ok, err := expr.EvalBool(n.Pred, cur)
			if err != nil || !ok {
				return nil, false
			}
		case cfg.Action:
			v, err := expr.EvalArith(n.Val, cur)
			if err != nil {
				return nil, false
			}
			cur[n.Var] = v
		case cfg.Hash, cfg.Checksum:
			// Concrete run of the original graph: evaluate inputs.
			cur[n.Var] = 0 // placeholder; tests avoid hash paths here
		}
		if n.IsLeaf() {
			return cur, true
		}
		// Deterministic concrete execution: exactly one successor must be
		// enabled. Try each successor; the predicate check above rejects
		// wrong branches on the next step, so pick the first whose subtree
		// accepts. For simplicity walk the first enabled predicate.
		next := cfg.None
		for _, s := range n.Succs {
			sn := g.Node(s)
			if sn.Kind == cfg.Predicate {
				ok, err := expr.EvalBool(sn.Pred, cur)
				if err == nil && ok {
					next = s
					break
				}
			} else {
				next = s
				break
			}
		}
		if next == cfg.None {
			return nil, false
		}
		id = next
	}
	return nil, false
}

func TestSummaryReducesPossiblePaths(t *testing.T) {
	const n = 12
	g := buildTwoPipe(t, n)
	before := g.PossiblePathsLog10()
	stats, err := Summarize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	after := g.PossiblePathsLog10()
	if after >= before {
		t.Errorf("summary did not reduce possible paths: %.2f -> %.2f", before, after)
	}
	for _, ps := range stats.Pipelines {
		if ps.PossibleAfter > ps.PossibleBefore {
			t.Errorf("pipeline %s grew: %.2f -> %.2f", ps.Name, ps.PossibleBefore, ps.PossibleAfter)
		}
	}
}

func TestPublicPreconditionFiltersFig8(t *testing.T) {
	// All paths into the egress have proto == 6 (non-TCP is dropped in the
	// ingress), so the egress branches for proto 17 must be filtered —
	// exactly Figure 8.
	const n = 3
	g := buildTwoPipe(t, n)
	stats, err := Summarize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eg := stats.Pipelines[1]
	if eg.Name != "eg" {
		t.Fatalf("pipeline order: %+v", stats.Pipelines)
	}
	// Egress valid paths: n mac hits + 1 miss. Without pre-condition
	// filtering the proto==17 branch would add one more.
	if eg.ValidPaths != n+1 {
		t.Errorf("egress summary has %d paths, want %d (proto==17 branch filtered)", eg.ValidPaths, n+1)
	}
	if eg.PublicConstraints == 0 {
		t.Error("no public pre-conditions computed for the egress pipeline")
	}

	// Ablation: without pre-condition filtering, the dead branch survives.
	g2 := buildTwoPipe(t, n)
	opts := DefaultOptions()
	opts.UsePreconditions = false
	stats2, err := Summarize(g2, opts)
	if err != nil {
		t.Fatal(err)
	}
	eg2 := stats2.Pipelines[1]
	if eg2.ValidPaths <= eg.ValidPaths {
		t.Errorf("ablation: expected more paths without filtering (got %d vs %d)", eg2.ValidPaths, eg.ValidPaths)
	}
}

func TestSummaryAtomicityAuxVars(t *testing.T) {
	// The §3.3 swap example: srcPort <- 10000; dstPort <- srcPort + 1
	// must be encoded with @srcPort so dstPort gets the ENTRY srcPort.
	src := `
header tcp { bit<16> srcPort; bit<16> dstPort; }
control c {
  apply {
    tcp.dstPort = tcp.srcPort + 1;
    tcp.srcPort = 10000;
  }
}
pipeline p { control = c; }
`
	prog := p4.MustParse(src)
	g, err := cfg.Build(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Summarize(g, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	res := exploreAll(t, g)
	if len(res.Templates) != 1 {
		t.Fatalf("templates = %d", len(res.Templates))
	}
	tm := res.Templates[0]
	// Concretize: entry srcPort = 7 → dstPort must be 8, srcPort 10000.
	st := expr.State{"hdr.tcp.srcPort": 7, "hdr.tcp.dstPort": 0}
	dst, err := expr.EvalArith(tm.Final["hdr.tcp.dstPort"], st)
	if err != nil {
		t.Fatal(err)
	}
	if dst != 8 {
		t.Errorf("dstPort = %d, want 8 (entry srcPort + 1)", dst)
	}
	srcv, err := expr.EvalArith(tm.Final["hdr.tcp.srcPort"], st)
	if err != nil {
		t.Fatal(err)
	}
	if srcv != 10000 {
		t.Errorf("srcPort = %d, want 10000", srcv)
	}
}

func TestSummaryUnreachablePipeline(t *testing.T) {
	// A pipeline whose guard is statically false must be severed.
	src := `
header h { bit<8> x; }
metadata { bit<9> port; }
control a { apply { meta.port = 1; } }
control b { apply { h.x = 99; } }
pipeline p1 { control = a; }
pipeline p2 { control = b; }
topology {
  entry p1;
  p1 -> p2 when meta.port == 2;
  p1 -> exit when meta.port == 1;
}
`
	prog := p4.MustParse(src)
	g, err := cfg.Build(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Summarize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pipelines[1].ValidPaths != 0 || stats.Pipelines[1].PrefixPaths != 0 {
		t.Errorf("unreachable pipeline p2 should have no paths: %+v", stats.Pipelines[1])
	}
	res := exploreAll(t, g)
	for _, tm := range res.Templates {
		if v, ok := tm.Final["hdr.h.x"]; ok {
			if c, isC := v.(expr.Const); isC && c.Val == 99 {
				t.Error("a path still executes the unreachable pipeline")
			}
		}
	}
}

func TestSummarySMTCallReduction(t *testing.T) {
	// Fig. 11b: code summary reduces the number of SMT calls for the
	// full test generation run.
	const n = 10
	plain := buildTwoPipe(t, n)
	resPlain := exploreAll(t, plain)

	g := buildTwoPipe(t, n)
	stats, err := Summarize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	resSumm := exploreAll(t, g)
	totalWith := stats.SMT.Checks + resSumm.SMT.Checks
	totalWithout := resPlain.SMT.Checks
	t.Logf("SMT calls: with summary %d (summarize %d + final %d), without %d",
		totalWith, stats.SMT.Checks, resSumm.SMT.Checks, totalWithout)
	// On a two-pipeline toy the absolute win is modest; just require the
	// final-generation phase to be cheaper than the unsummarized run.
	if resSumm.SMT.Checks > totalWithout {
		t.Errorf("final generation on summarized graph used more SMT calls (%d) than full run (%d)",
			resSumm.SMT.Checks, totalWithout)
	}
}
