package meissa

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/programs"
	"repro/internal/spec"
	"repro/internal/switchsim"
)

// TestCorpusCleanTargetsPass is the fundamental no-false-positive check:
// every corpus program, generated with full coverage and executed against
// a fault-free target, must pass every test case.
func TestCorpusCleanTargetsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run")
	}
	for _, p := range programs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			sys, err := New(p.Prog, p.Rules, nil, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			gen, err := sys.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if gen.Truncated {
				t.Fatal("generation truncated")
			}
			if len(gen.Templates) == 0 {
				t.Fatal("no templates generated")
			}
			target, err := switchsim.Compile(p.Prog, p.Rules, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sys.TestTarget(target, gen)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed != 0 {
				f := rep.Failures()[0]
				t.Fatalf("%s: %d false positives; first: case %d mismatches=%v checksums=%v violations=%v",
					p.Name, rep.Failed, f.Case.ID, f.Mismatches, f.ChecksumErrors, f.Violations)
			}
		})
	}
}

// TestSummaryPreservesCoverage verifies the §3.4 theorem operationally:
// generation with and without code summary yields the same number of
// valid paths on every corpus program small enough to run both ways.
func TestSummaryPreservesCoverage(t *testing.T) {
	for _, p := range []*programs.Program{
		programs.Router(), programs.MTag(), programs.ACL(),
		programs.GW(1, programs.Set1), programs.GW(2, programs.Set1),
	} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			with, err := New(p.Prog, p.Rules, nil, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			genWith, err := with.Generate()
			if err != nil {
				t.Fatal(err)
			}
			optsNo := DefaultOptions()
			optsNo.CodeSummary = false
			without, err := New(p.Prog, p.Rules, nil, optsNo)
			if err != nil {
				t.Fatal(err)
			}
			genWithout, err := without.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if len(genWith.Templates) != len(genWithout.Templates) {
				t.Fatalf("coverage differs: %d templates with summary, %d without",
					len(genWith.Templates), len(genWithout.Templates))
			}
		})
	}
}

// TestSummaryReducesWork verifies the Fig. 11 shape on a multi-pipeline
// program: with code summary, the final generation pass needs fewer SMT
// calls and the CFG has fewer possible paths.
func TestSummaryReducesWork(t *testing.T) {
	p := programs.GW(3, programs.Set1)
	with, _ := New(p.Prog, p.Rules, nil, DefaultOptions())
	genWith, err := with.Generate()
	if err != nil {
		t.Fatal(err)
	}
	optsNo := DefaultOptions()
	optsNo.CodeSummary = false
	without, _ := New(p.Prog, p.Rules, nil, optsNo)
	genWithout, err := without.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if genWith.PossiblePathsLog10After >= genWithout.PossiblePathsLog10After {
		t.Errorf("summary did not reduce possible paths: %.1f vs %.1f",
			genWith.PossiblePathsLog10After, genWithout.PossiblePathsLog10After)
	}
	// The final generation pass over the summarized CFG must be cheaper
	// than exploring the original whole program (the summarization cost
	// itself amortizes at production scale — Fig. 11a).
	if genWith.FinalPathsExplored >= genWithout.FinalPathsExplored {
		t.Errorf("summary did not reduce final-pass exploration: %d vs %d",
			genWith.FinalPathsExplored, genWithout.FinalPathsExplored)
	}
	if len(genWith.Templates) != len(genWithout.Templates) {
		t.Errorf("coverage differs: %d vs %d templates", len(genWith.Templates), len(genWithout.Templates))
	}
}

// TestUDPTransport runs the Router suite over real UDP sockets: the
// switch serves on a loopback UDP port, the driver injects datagrams and
// captures replies.
func TestUDPTransport(t *testing.T) {
	p := programs.Router()
	sys, err := New(p.Prog, p.Rules, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}
	target, err := switchsim.Compile(p.Prog, p.Rules, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := driver.ServeUDP(target, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	link, err := driver.DialUDP(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	rep, err := sys.Test(link, gen)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("UDP run failed: %s", rep.Summary())
	}
	if rep.Passed == 0 {
		t.Fatal("no cases ran")
	}
}

// TestSpecScopedGeneration checks that assume clauses narrow generation
// (§6's NAT sub-case workflow): with a TCP-only spec, no template's model
// carries a non-TCP protocol.
func TestSpecScopedGeneration(t *testing.T) {
	p := programs.Router()
	sp := spec.MustParseOne(`
spec tcp_only {
  assume ethernet.etherType == 0x0800;
  assume ipv4.protocol == 6;
  expect forwarded;
}
`)
	sys, err := New(p.Prog, p.Rules, []*spec.Spec{sp}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Templates) == 0 {
		t.Fatal("no templates")
	}
	for _, tm := range gen.Templates {
		if proto, ok := tm.Model["hdr.ipv4.protocol"]; ok && proto != 6 {
			t.Errorf("template %d model has protocol %d, want 6", tm.ID, proto)
		}
	}
}

// TestDetectsInjectedFault is the end-to-end non-code bug check at the
// public API level.
func TestDetectsInjectedFault(t *testing.T) {
	p := programs.GW(1, programs.Set1)
	sys, err := New(p.Prog, p.Rules, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}
	target, err := switchsim.Compile(p.Prog, p.Rules,
		switchsim.Faults{switchsim.SetValidNoOp{Header: "vxlan"}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.TestTarget(target, gen)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("injected setValid fault went undetected")
	}
}

// TestLocalize exercises the §7 bug-localization trace.
func TestLocalize(t *testing.T) {
	p := programs.GW(1, programs.Set1)
	sys, _ := New(p.Prog, p.Rules, nil, DefaultOptions())
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}
	target, _ := switchsim.Compile(p.Prog, p.Rules,
		switchsim.Faults{switchsim.SetValidNoOp{Header: "vxlan"}})
	link := driver.NewLoopback(target)
	rep, err := sys.Test(link, gen)
	if err != nil {
		t.Fatal(err)
	}
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Fatal("expected failures")
	}
	out := Localize(gen, fails[0], link.Replay(fails[0].Case.Entry, fails[0].Case.Wire))
	for _, want := range []string{"Bug localization", "symbolic trace", "physical trace"} {
		if !contains(out, want) {
			t.Errorf("localization output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestNewRejectsBrokenPrograms checks input validation at the API
// boundary.
func TestNewRejectsBrokenPrograms(t *testing.T) {
	prog := &p4.Program{Name: "broken"}
	prog.Pipelines = []*p4.PipelineDecl{{Name: "p", Control: "missing"}}
	if _, err := New(prog, nil, nil, DefaultOptions()); err == nil {
		t.Fatal("expected error for unresolvable control")
	}
}
