// Multiswitch: the Figure 1 scenario. gw-4 spans two switches with four
// pipelines each; flow A stays on switch 0 (ingress0 → egress1 → ingress1
// → egress0) while flow B crosses to switch 1 (ingress0 → egress0, then
// the peer's full path). This example generates full-coverage tests for
// the whole multi-switch program, runs them, and shows the pipeline
// traversal of both flow classes.
//
//	go run ./examples/multiswitch
package main

import (
	"fmt"
	"log"
	"strings"

	meissa "repro"
	"repro/internal/driver"
	"repro/internal/programs"
	"repro/internal/switchsim"
)

func main() {
	p := programs.GW(4, programs.Set1)
	fmt.Printf("%s: %d pipelines across %d switches, %d rules\n",
		p.Name, p.Pipes, p.Switches, p.Rules.Len())

	sys, err := meissa.New(p.Prog, p.Rules, nil, meissa.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d templates; possible paths 10^%.1f reduced to 10^%.1f by code summary\n",
		len(gen.Templates), gen.PossiblePathsLog10Before, gen.PossiblePathsLog10After)

	target, err := switchsim.Compile(p.Prog, p.Rules, nil)
	if err != nil {
		log.Fatal(err)
	}
	link := driver.NewLoopback(target)
	rep, err := sys.Test(link, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())

	// Show one representative traversal per flow class, reading the
	// pipeline path from the target's execution trace.
	flows := map[string]bool{}
	for _, o := range rep.Outcomes {
		tr := traceFor(target, o)
		if tr == nil || len(tr.Pipelines) == 0 {
			continue
		}
		key := strings.Join(tr.Pipelines, " -> ")
		if flows[key] {
			continue
		}
		flows[key] = true
	}
	fmt.Println("distinct pipeline traversals observed:")
	for k := range flows {
		fmt.Println("  ", k)
	}
}

// traceFor re-injects the case to capture its trace (the loopback link
// only retains the most recent one).
func traceFor(target *switchsim.Target, o *driver.Outcome) *switchsim.Result {
	res, err := target.Inject(o.Case.Entry, o.Case.Wire)
	if err != nil {
		return nil
	}
	return res
}
