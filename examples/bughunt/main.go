// Bughunt: reproduces the §6 case study for issue #14 (bf-p4c backend
// bug C): a program whose code logic is correct, compiled by a backend
// where setValid silently does nothing on some paths. Verification
// (Aquila-style, which never executes the target) passes; testing catches
// the divergence and localizes it.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"log"
	"time"

	meissa "repro"
	"repro/internal/driver"
	"repro/internal/programs"
	"repro/internal/switchsim"
)

func main() {
	p := programs.GW(1, programs.Set1)
	sys, err := meissa.New(p.Prog, p.Rules, nil, meissa.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		log.Fatal(err)
	}

	// The buggy toolchain: setValid(vxlan) compiles to a no-op.
	fault := switchsim.Faults{switchsim.SetValidNoOp{Header: "vxlan"}}
	buggy, err := switchsim.Compile(p.Prog, p.Rules, fault)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Verification view: predictions derive from source semantics, so
	// the code-correct program passes — the bug is invisible.
	fmt.Println("== verification (source semantics only) ==")
	d := driver.New(p.Prog, gen.Graph, nil, nil)
	verifierFindings := 0
	for i, t := range gen.Templates {
		c, err := d.Concretize(t, uint64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		_ = c // predictions computed; nothing to compare against
	}
	fmt.Printf("verified %d paths against the intent: %d findings (the compiler bug is not in the code)\n",
		len(gen.Templates), verifierFindings)

	// 2. Testing view: inject the generated packets into the compiled
	// target and compare.
	fmt.Println("== testing (compiled target) ==")
	link := driver.NewLoopback(buggy)
	rep, err := sys.Test(link, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())
	for _, c := range rep.Skips {
		fmt.Printf("  skip case %d: %s\n", c.ID, c.SkipReason)
	}
	if rep.Flaky > 0 || rep.Lost > 0 || rep.Retransmissions > 0 {
		fmt.Printf("  link noise: %d flaky, %d lost, %d retransmissions\n",
			rep.Flaky, rep.Lost, rep.Retransmissions)
	}
	if rep.Failed == 0 {
		fmt.Println("unexpected: fault not detected")
		return
	}

	// 3. Localization (§7): symbolic trace vs physical trace.
	f := rep.Failures()[0]
	fmt.Println()
	fmt.Println(meissa.Localize(gen, f, link.Replay(f.Case.Entry, f.Case.Wire)))
	fmt.Println("conclusion: the P4 code is correct; the divergence is in the compiled target")
	fmt.Println("(issue #14: the vendor confirmed and fixed this class of bug in the next compiler release)")

	// 4. The same hunt over a noisy harness link: with seeded drop,
	// duplication and reordering on the wire, the retrying driver still
	// reaches the same verdicts — real failures stay FAIL, and cases that
	// only stumbled on link noise are reported FLAKY, never silently.
	fmt.Println()
	fmt.Println("== testing again over a lossy link (drop=0.3 dup=0.2 reorder=0.2, seeded) ==")
	buggy2, err := switchsim.Compile(p.Prog, p.Rules, fault)
	if err != nil {
		log.Fatal(err)
	}
	shaken := driver.NewFaultyLink(driver.NewLoopback(buggy2),
		driver.LinkFaults{Seed: 42, Drop: 0.3, Duplicate: 0.2, Reorder: 0.2})
	d2 := sys.NewDriver(shaken, gen)
	d2.Retries = 8
	d2.RecvTimeout = 20 * time.Millisecond
	d2.Backoff = time.Millisecond
	rep2, err := d2.RunTemplates(gen.Templates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep2.Summary())
	fmt.Println("  injected:", shaken.Stats())
	if rep2.Failed == rep.Failed && rep2.Lost == 0 {
		fmt.Println("  same data-plane verdicts as the clean run: link noise absorbed, bug still caught")
	}
}
