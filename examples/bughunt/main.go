// Bughunt: reproduces the §6 case study for issue #14 (bf-p4c backend
// bug C): a program whose code logic is correct, compiled by a backend
// where setValid silently does nothing on some paths. Verification
// (Aquila-style, which never executes the target) passes; testing catches
// the divergence and localizes it.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"log"

	meissa "repro"
	"repro/internal/driver"
	"repro/internal/programs"
	"repro/internal/switchsim"
)

func main() {
	p := programs.GW(1, programs.Set1)
	sys, err := meissa.New(p.Prog, p.Rules, nil, meissa.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		log.Fatal(err)
	}

	// The buggy toolchain: setValid(vxlan) compiles to a no-op.
	fault := switchsim.Faults{switchsim.SetValidNoOp{Header: "vxlan"}}
	buggy, err := switchsim.Compile(p.Prog, p.Rules, fault)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Verification view: predictions derive from source semantics, so
	// the code-correct program passes — the bug is invisible.
	fmt.Println("== verification (source semantics only) ==")
	d := driver.New(p.Prog, gen.Graph, nil, nil)
	verifierFindings := 0
	for i, t := range gen.Templates {
		c, err := d.Concretize(t, uint64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		_ = c // predictions computed; nothing to compare against
	}
	fmt.Printf("verified %d paths against the intent: %d findings (the compiler bug is not in the code)\n",
		len(gen.Templates), verifierFindings)

	// 2. Testing view: inject the generated packets into the compiled
	// target and compare.
	fmt.Println("== testing (compiled target) ==")
	link := driver.NewLoopback(buggy)
	rep, err := sys.Test(link, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())
	if rep.Failed == 0 {
		fmt.Println("unexpected: fault not detected")
		return
	}

	// 3. Localization (§7): symbolic trace vs physical trace.
	f := rep.Failures()[0]
	fmt.Println()
	fmt.Println(meissa.Localize(gen, f, link.LastTrace()))
	fmt.Println("conclusion: the P4 code is correct; the divergence is in the compiled target")
	fmt.Println("(issue #14: the vendor confirmed and fixed this class of bug in the next compiler release)")
}
