// Quickstart: generate full-path-coverage test cases for a small router
// and run them against the reference software target.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	meissa "repro"
	"repro/internal/p4"
	"repro/internal/rules"
	"repro/internal/switchsim"
)

const routerSrc = `
program quickstart_router;

header ethernet {
  bit<48> dstAddr;
  bit<48> srcAddr;
  bit<16> etherType;
}
header ipv4 {
  bit<8>  ttl;
  bit<8>  protocol;
  bit<16> checksum;
  bit<32> srcAddr;
  bit<32> dstAddr;
}
metadata { bit<9> egress_port; }

parser prs {
  state start {
    extract(ethernet);
    transition select(ethernet.etherType) {
      0x0800: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 { extract(ipv4); transition accept; }
}

action forward(bit<9> port) {
  meta.egress_port = port;
  ipv4.ttl = ipv4.ttl - 1;
  update_checksum(ipv4, checksum);
}
action drop_pkt() { mark_drop(); }

table routes {
  key = { ipv4.dstAddr : lpm; }
  actions = { forward; drop_pkt; }
  default_action = drop_pkt();
}

control ing {
  apply {
    if (ipv4.isValid() && ipv4.ttl > 1) {
      routes.apply();
    } else {
      mark_drop();
    }
  }
}

pipeline ingress { parser = prs; control = ing; }
`

const routerRules = `
table routes {
  ipv4.dstAddr=10.1.0.0/16 -> forward(1);
  ipv4.dstAddr=10.2.0.0/16 -> forward(2);
  ipv4.dstAddr=10.2.3.0/24 -> forward(3);
}
`

func main() {
	// 1. Parse the program and rule set.
	prog, err := p4.Parse(routerSrc)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := rules.Parse(routerRules)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Generate test case templates with full path coverage.
	sys, err := meissa.New(prog, rs, nil, meissa.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d templates covering every valid path (possible paths 10^%.1f)\n",
		len(gen.Templates), gen.PossiblePathsLog10Before)

	// 3. Compile the reference target and run the whole suite.
	target, err := switchsim.Compile(prog, rs, nil)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.TestTarget(target, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Summary())

	// 4. Recompile with an injected compiler fault — the checksum engine
	// silently disabled — and watch the same suite fail.
	buggy, err := switchsim.Compile(prog, rs, switchsim.Faults{
		switchsim.ChecksumSkip{Header: "ipv4"},
	})
	if err != nil {
		log.Fatal(err)
	}
	report2, err := sys.TestTarget(buggy, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with injected checksum fault: %s\n", report2.Summary())
	if len(report2.Failures()) > 0 {
		f := report2.Failures()[0]
		fmt.Printf("  first failure (case %d): %v %v\n", f.Case.ID, f.Mismatches, f.ChecksumErrors)
	}
}
