// NAT gateway: the §6 deployment-experience workflow. A NAT data plane
// processes packets going both ways and supports TCP and UDP; network
// engineers break the behaviour into sub-cases, give each a spec with
// base constraints plus test-case-specific constraints, and attach Meissa
// to them ("in this way, it is easy for network engineers without a
// formal method background to attach Meissa to existing test cases").
//
//	go run ./examples/natgw
package main

import (
	"fmt"
	"log"

	meissa "repro"
	"repro/internal/p4"
	"repro/internal/rules"
	"repro/internal/spec"
	"repro/internal/switchsim"
)

const natSrc = `
program natgw;

header ethernet {
  bit<48> dstAddr;
  bit<48> srcAddr;
  bit<16> etherType;
}
header ipv4 {
  bit<8>  ttl;
  bit<8>  protocol;
  bit<16> checksum;
  bit<32> srcAddr;
  bit<32> dstAddr;
}
header tcp { bit<16> srcPort; bit<16> dstPort; }
header udp { bit<16> srcPort; bit<16> dstPort; }
metadata {
  bit<1> is_in;
  bit<1> nat_hit;
}

parser prs {
  state start {
    extract(ethernet);
    transition select(ethernet.etherType) {
      0x0800: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 {
    extract(ipv4);
    transition select(ipv4.protocol) {
      6: parse_tcp;
      17: parse_udp;
      default: accept;
    }
  }
  state parse_tcp { extract(tcp); transition accept; }
  state parse_udp { extract(udp); transition accept; }
}

// Inbound: public destination address translated to the private VM.
action nat_in(bit<32> privAddr) {
  ipv4.dstAddr = privAddr;
  meta.is_in = 1;
  meta.nat_hit = 1;
}

// Outbound: private source translated to the public address.
action nat_out(bit<32> pubAddr) {
  ipv4.srcAddr = pubAddr;
  meta.nat_hit = 1;
}

action nat_miss() { mark_drop(); }

table nat_ingress {
  key = { ipv4.dstAddr : exact; }
  actions = { nat_in; nat_miss; }
  default_action = nat_miss();
}

table nat_egress {
  key = { ipv4.srcAddr : exact; }
  actions = { nat_out; nat_miss; }
  default_action = nat_miss();
}

control ing {
  apply {
    if (ipv4.isValid()) {
      if (ipv4.dstAddr == 203.0.113.10) {
        nat_ingress.apply();
      } else {
        nat_egress.apply();
      }
      if (meta.nat_hit == 1) {
        update_checksum(ipv4, checksum);
      }
    } else {
      mark_drop();
    }
  }
}

pipeline ingress { parser = prs; control = ing; }
`

const natRules = `
table nat_ingress {
  ipv4.dstAddr=203.0.113.10 -> nat_in(192.168.1.2);
}
table nat_egress {
  ipv4.srcAddr=192.168.1.2 -> nat_out(203.0.113.10);
}
`

// Six sub-cases: {in, out} × {TCP, UDP, other} — the §6 decomposition
// ("a NAT gateway processes packets going both ways, supports three
// protocols, and thus results in six sub-cases").
const natSpecs = `
spec in_tcp {
  assume ethernet.etherType == 0x0800;
  assume ipv4.protocol == 6;
  assume ipv4.dstAddr == 203.0.113.10;
  expect forwarded;
  expect ipv4.dstAddr == 192.168.1.2;
  expect tcp.srcPort == in.tcp.srcPort;
  expect tcp.dstPort == in.tcp.dstPort;
}

spec in_udp {
  assume ethernet.etherType == 0x0800;
  assume ipv4.protocol == 17;
  assume ipv4.dstAddr == 203.0.113.10;
  expect forwarded;
  expect ipv4.dstAddr == 192.168.1.2;
  expect udp.dstPort == in.udp.dstPort;
}

spec out_tcp {
  assume ethernet.etherType == 0x0800;
  assume ipv4.protocol == 6;
  assume ipv4.srcAddr == 192.168.1.2;
  assume ipv4.dstAddr == 198.51.100.7;
  expect forwarded;
  expect ipv4.srcAddr == 203.0.113.10;
}

spec out_udp {
  assume ethernet.etherType == 0x0800;
  assume ipv4.protocol == 17;
  assume ipv4.srcAddr == 192.168.1.2;
  assume ipv4.dstAddr == 198.51.100.7;
  expect forwarded;
  expect ipv4.srcAddr == 203.0.113.10;
}

spec in_unknown_flow_dropped {
  assume ethernet.etherType == 0x0800;
  assume ipv4.srcAddr == 10.9.9.9;
  assume ipv4.dstAddr == 198.51.100.99;
  expect dropped;
}

spec non_ip_dropped {
  assume ethernet.etherType == 0x86dd;
  expect dropped;
}
`

func main() {
	prog, err := p4.Parse(natSrc)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := rules.Parse(natRules)
	if err != nil {
		log.Fatal(err)
	}
	specs, err := spec.Parse(natSpecs)
	if err != nil {
		log.Fatal(err)
	}

	// Each sub-case is generated and tested on its own, exactly like the
	// engineers' workflow in §6: Meissa contributes the base constraints
	// (a valid IPv4 packet) and full path coverage under the sub-case's
	// test-specific constraints.
	target, err := switchsim.Compile(prog, rs, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, sp := range specs {
		sys, err := meissa.New(prog, rs, []*spec.Spec{sp}, meissa.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		gen, err := sys.Generate()
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.TestTarget(target, gen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sub-case %-24s %d templates, %s\n", sp.Name, len(gen.Templates), rep.Summary())
		for _, f := range rep.Failures() {
			fmt.Printf("  FAIL: %v %v %v\n", f.Violations, f.Mismatches, f.ChecksumErrors)
		}
	}
}
