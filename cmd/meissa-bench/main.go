// Command meissa-bench regenerates every table and figure of the paper's
// evaluation section (§5) and prints the same rows/series the paper
// reports.
//
// Usage:
//
//	meissa-bench -exp table1|fig9|fig10|fig11|fig12|table2|all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig9, fig10, fig11, fig12, table2, all")
	budget := flag.Duration("budget", experiments.Budget, "per-tool time budget")
	parallel := flag.Int("parallel", 0, "Meissa exploration workers (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.String("json", "", "write a versioned JSON bench report (one run per program x rule set) to this file")
	flag.Parse()
	experiments.Budget = *budget
	experiments.Parallelism = *parallel

	if *jsonOut != "" {
		br, err := experiments.BenchRuns()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench json:", err)
			os.Exit(1)
		}
		if err := obs.WriteFileAtomic(*jsonOut, br); err != nil {
			fmt.Fprintln(os.Stderr, "bench json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d run reports to %s\n", len(br.Runs), *jsonOut)
		// -json alone emits the structured document and exits; pass -exp
		// explicitly to also print the human tables.
		expGiven := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				expGiven = true
			}
		})
		if !expGiven {
			return
		}
	}

	run := func(name string, f func() error) {
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1: data plane programs used in evaluation", func() error {
			experiments.WriteTable1(os.Stdout)
			return nil
		})
	}
	if want("fig9") {
		run("Fig. 9: running time on different data plane programs", func() error {
			rows, err := experiments.Fig9()
			if err != nil {
				return err
			}
			experiments.WriteFig9(os.Stdout, rows)
			return nil
		})
	}
	if want("fig10") {
		run("Fig. 10: running time on gw-1/gw-2 under different table rule sets", func() error {
			rows, err := experiments.Fig10()
			if err != nil {
				return err
			}
			experiments.WriteFig10(os.Stdout, rows)
			return nil
		})
	}
	if want("fig11") {
		run("Fig. 11: effectiveness of code summary on different programs", func() error {
			effs, err := experiments.Fig11()
			if err != nil {
				return err
			}
			experiments.WriteSummaryEffects(os.Stdout, "gw-1..gw-4 (a: time, b: SMT calls, c: possible paths)", effs)
			return nil
		})
	}
	if want("fig12") {
		run("Fig. 12: effectiveness of code summary on different rule sets", func() error {
			effs, err := experiments.Fig12()
			if err != nil {
				return err
			}
			experiments.WriteSummaryEffects(os.Stdout, "gw-4 x set-1..set-4 (a: time, b: SMT calls, c: possible paths)", effs)
			return nil
		})
	}
	if want("table2") {
		run("Table 2: bug detection matrix", func() error {
			return experiments.WriteTable2(os.Stdout)
		})
	}
}
