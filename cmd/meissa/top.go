package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// cmdTop is the live-run introspection client: it long-polls the debug
// server of a running meissa process (its -pprof-addr) for registry
// deltas, folds them into a local mirror with Snapshot.Merge, and
// renders a terminal dashboard — phase progress, verdict rates, fleet
// lease states, journal/store hit rates — refreshed whenever the run's
// metrics actually change.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "debug server address of the run to watch (its -pprof-addr)")
	interval := fs.Duration("interval", 2*time.Second, "max long-poll wait per refresh")
	once := fs.Bool("once", false, "print one dashboard frame and exit (no screen redraw)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := "http://" + *addr
	client := &http.Client{Timeout: *interval + 10*time.Second}

	var mirror *obs.Snapshot
	var cursor uint64
	// Previous totals for rate computation.
	var prev map[string]uint64
	var prevAt time.Time
	for {
		d, err := fetchDelta(client, base, cursor, *interval)
		if err != nil {
			return fmt.Errorf("top: %w", err)
		}
		if d.Snapshot != nil {
			if d.Full || mirror == nil {
				mirror = d.Snapshot
			} else {
				mirror.Merge(d.Snapshot)
			}
		}
		cursor = d.Cursor
		fleet, dmn := fetchFleet(client, base) // nil outside sharded/daemon runs
		now := time.Now()
		var out strings.Builder
		renderTop(&out, mirror, fleet, dmn, prev, now.Sub(prevAt))
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear: redraw in place
		}
		os.Stdout.WriteString(out.String())
		if *once {
			return nil
		}
		if mirror != nil {
			prev = mirror.Counters
			prevAt = now
		}
	}
}

// fetchDelta long-polls /metrics/delta. cursor 0 asks for a full
// snapshot; afterwards the server replies as soon as the registry
// changes (or with an empty delta at the wait deadline).
func fetchDelta(c *http.Client, base string, cursor uint64, wait time.Duration) (*obs.DeltaResponse, error) {
	url := fmt.Sprintf("%s/metrics/delta?cursor=%d&wait=%d", base, cursor, wait.Milliseconds())
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var d obs.DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}

// daemonView mirrors the resident daemon's /fleet fallback payload,
// recognized by its "daemon":true discriminator.
type daemonView struct {
	Daemon         bool   `json:"daemon"`
	Addr           string `json:"addr"`
	UptimeNS       int64  `json:"uptime_ns"`
	RequestsServed uint64 `json:"requests_served"`
	WarmHits       uint64 `json:"warm_hits"`
	StoreConflicts uint64 `json:"store_conflicts"`
	Inflight       int    `json:"inflight"`
	QueueDepth     int    `json:"queue_depth"`
	Families       []struct {
		Name      string `json:"name"`
		Gens      uint64 `json:"gens"`
		Regresses uint64 `json:"regresses"`
		WarmHits  uint64 `json:"warm_hits"`
	} `json:"families"`
}

// fetchFleet reads the live /fleet view, which is either a shard
// coordinator's per-worker state (sharded runs) or the resident
// daemon's service view (its "daemon":true discriminator decides).
// Both are nil when no run is live (404) or the view is momentarily
// unavailable.
func fetchFleet(c *http.Client, base string) (*shard.FleetView, *daemonView) {
	resp, err := c.Get(base + "/fleet")
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, nil
	}
	var d daemonView
	if err := json.Unmarshal(body, &d); err == nil && d.Daemon {
		return nil, &d
	}
	var v shard.FleetView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, nil
	}
	return &v, nil
}

// rate formats a per-second rate for the counter delta since the last
// frame; "-" before two frames exist.
func rate(cur map[string]uint64, prev map[string]uint64, dt time.Duration, key string) string {
	if prev == nil || dt <= 0 {
		return "-"
	}
	d := cur[key] - prev[key]
	return fmt.Sprintf("%.0f/s", float64(d)/dt.Seconds())
}

func renderTop(w *strings.Builder, s *obs.Snapshot, fleet *shard.FleetView, dmn *daemonView, prev map[string]uint64, dt time.Duration) {
	if s == nil {
		fmt.Fprintln(w, "meissa top: no snapshot yet")
		return
	}
	fmt.Fprintf(w, "meissa top — uptime %v\n\n", time.Duration(s.UptimeNS).Round(time.Second))

	if len(s.Phases) > 0 {
		fmt.Fprintln(w, "phases:")
		for _, p := range s.Phases {
			fmt.Fprintf(w, "  %-12s %8v  x%d\n", p.Name, p.Dur().Round(time.Millisecond), p.Count)
		}
		fmt.Fprintln(w)
	}

	c := s.Counters
	fmt.Fprintln(w, "throughput:")
	fmt.Fprintf(w, "  paths explored  %10d  %8s   pruned %d\n",
		c["sym.paths_explored"], rate(c, prev, dt, "sym.paths_explored"), c["sym.paths_pruned"])
	queries := c["smt.queries_sat"] + c["smt.queries_unsat"] + c["smt.queries_unknown"]
	fmt.Fprintf(w, "  solver queries  %10d  %8s   sat/unsat/unk %d/%d/%d\n",
		queries, rate(c, prev, dt, "smt.queries_sat"),
		c["smt.queries_sat"], c["smt.queries_unsat"], c["smt.queries_unknown"])
	verdicts := c["driver.cases_passed"] + c["driver.cases_failed"] + c["driver.cases_flaky"] + c["driver.cases_lost"]
	if verdicts > 0 {
		fmt.Fprintf(w, "  test verdicts   %10d  %8s   pass/fail/flaky/lost %d/%d/%d/%d\n",
			verdicts, rate(c, prev, dt, "driver.cases_passed"),
			c["driver.cases_passed"], c["driver.cases_failed"], c["driver.cases_flaky"], c["driver.cases_lost"])
	}
	if q, ok := s.Histograms["smt.query_latency_ns"]; ok && q.Count > 0 {
		if qq := q.SummaryQuantiles(); qq != nil {
			fmt.Fprintf(w, "  solver latency  p50=%v p90=%v p99=%v\n",
				time.Duration(qq.P50).Round(time.Microsecond),
				time.Duration(qq.P90).Round(time.Microsecond),
				time.Duration(qq.P99).Round(time.Microsecond))
		}
	}
	fmt.Fprintln(w)

	// Hit rates: solver interactions answered without a live solve.
	if hits, total := c["sym.journal_hits"], c["sym.journal_hits"]+queries; hits > 0 && total > 0 {
		fmt.Fprintf(w, "journal: %d hits (%.1f%% of solver interactions), %d records appended\n",
			hits, 100*float64(hits)/float64(total), c["journal.records_appended"])
	}
	if cacheTotal := c["smt.queries_cache_hit"] + c["smt.cache_misses"]; cacheTotal > 0 {
		fmt.Fprintf(w, "cache: %d hits / %d lookups (%.1f%%)\n",
			c["smt.queries_cache_hit"], cacheTotal,
			100*float64(c["smt.queries_cache_hit"])/float64(cacheTotal))
	}
	if c["store.commits"] > 0 || c["store.records_put"] > 0 {
		fmt.Fprintf(w, "store: %d commits, %d records put, %d wal replays\n",
			c["store.commits"], c["store.records_put"], c["store.wal_replays"])
	}

	if dmn != nil {
		fmt.Fprintf(w, "\ndaemon %s: %d requests (%d warm hits, %d store conflicts), %d in flight, %d queued\n",
			dmn.Addr, dmn.RequestsServed, dmn.WarmHits, dmn.StoreConflicts, dmn.Inflight, dmn.QueueDepth)
		for _, f := range dmn.Families {
			fmt.Fprintf(w, "  family %-12s gens=%d regresses=%d warm_hits=%d\n",
				f.Name, f.Gens, f.Regresses, f.WarmHits)
		}
	}

	if fleet != nil {
		fmt.Fprintf(w, "\nfleet: %d/%d units complete, %d quarantined (trace %s)\n",
			fleet.Completed, fleet.Units, fleet.Quarantined, fleet.TraceID)
		for _, fw := range fleet.Workers {
			state := "dead"
			switch {
			case fw.Busy:
				state = fmt.Sprintf("unit %d (%d paths)", fw.Unit, fw.Paths)
			case fw.Alive && fw.Ready:
				state = "idle"
			case fw.Alive:
				state = "starting"
			}
			fmt.Fprintf(w, "  worker %-3d slot %d  restarts %d  %s\n", fw.Worker, fw.Slot, fw.Restarts, state)
		}
	}

	if len(s.Gauges) > 0 {
		keys := make([]string, 0, len(s.Gauges))
		for k := range s.Gauges {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "\ngauges:")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-24s %d\n", k, s.Gauges[k])
		}
	}
}
