package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/obs"
	"repro/internal/p4"
)

// cmdServe runs the resident verification daemon: one process owning
// the verdict store and a registry of warm program families, answering
// load/gen/regress/status/unload requests over a line-delimited-JSON
// socket until SIGINT/SIGTERM drains it.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "tcp://127.0.0.1:7600", "listen address: unix://path, tcp://host:port, or host:port")
	storePath := fs.String("store", "", "durable verdict store the daemon owns (required)")
	storeWait := fs.Duration("store-wait", 0, "bounded wait for the store lock at startup (0 = fail fast)")
	maxConcurrent := fs.Int("max-concurrent", 2, "concurrently executing requests")
	maxCoordinators := fs.Int("max-coordinators", 1, "concurrently executing shard coordinators")
	drain := fs.Duration("drain", 30*time.Second, "shutdown wait for in-flight requests")
	verbose := fs.Bool("v", false, "verbose stderr logging")
	ob := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("serve requires -store <file>")
	}
	if err := ob.activate(*verbose); err != nil {
		return err
	}
	d, err := daemon.New(daemon.Config{
		Addr:            *addr,
		StorePath:       *storePath,
		StoreWait:       *storeWait,
		MaxConcurrent:   *maxConcurrent,
		MaxCoordinators: *maxCoordinators,
		DrainTimeout:    *drain,
	})
	if err != nil {
		return err
	}
	if err := d.Listen(); err != nil {
		return err
	}
	fmt.Printf("meissa daemon on %s (store %s)\n", d.Addr(), *storePath)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		obs.Infof("meissa: %v: draining daemon", sig)
		if err := d.Shutdown(); err != nil {
			obs.Warnf("meissa: shutdown: %v", err)
		}
	}()
	return d.Serve()
}

// cmdClient talks to a running daemon: `meissa client <verb> -addr ...`
// with the verbs load, gen, regress, status, unload. gen and regress
// round-trip the same flags as the cold CLI, so a warm daemon answer
// can be diffed byte-for-byte against `meissa gen -o`.
func cmdClient(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: meissa client <load|gen|regress|status|unload> -addr ADDR ...")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "load":
		return clientLoad(rest)
	case "gen":
		return clientGen(rest)
	case "regress":
		return clientRegress(rest)
	case "status":
		return clientStatus(rest)
	case "unload":
		return clientUnload(rest)
	default:
		return fmt.Errorf("unknown client verb %q", verb)
	}
}

// dialFlags registers the flags every client verb shares.
func dialFlags(fs *flag.FlagSet) (addr, tenant, family *string, wait *time.Duration) {
	addr = fs.String("addr", "tcp://127.0.0.1:7600", "daemon address")
	tenant = fs.String("tenant", "", "fair-share tenant name (default \"default\")")
	family = fs.String("family", "", "loaded program family name")
	wait = fs.Duration("dial-wait", 5*time.Second, "retry dialing the daemon for this long")
	return
}

// do runs one request against the daemon and fails on a daemon-side
// error.
func do(addr string, wait time.Duration, req *daemon.Request) (*daemon.Response, error) {
	c, err := daemon.Dial(addr, wait)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("daemon: %s", resp.Error)
	}
	return resp, nil
}

func clientLoad(args []string) error {
	fs := flag.NewFlagSet("client load", flag.ContinueOnError)
	addr, tenant, family, wait := dialFlags(fs)
	prog, rs, specs, _, err := loadInputs(fs, args)
	if err != nil {
		return err
	}
	name := *family
	if name == "" {
		// A corpus program keeps its corpus name ("gw-1"), which differs
		// from the parsed program identifier ("gw_1").
		if f := fs.Lookup("corpus"); f != nil && f.Value.String() != "" {
			name = f.Value.String()
		}
	}
	req := &daemon.Request{
		Op:      daemon.OpLoad,
		Tenant:  *tenant,
		Family:  name,
		Program: p4.Print(prog),
		Rules:   rs.String(),
	}
	if len(specs) > 0 {
		// Ship the spec source verbatim; the daemon re-parses it.
		req.Specs = specSource(fs)
	}
	resp, err := do(*addr, *wait, req)
	if err != nil {
		return err
	}
	state := "loaded"
	if resp.Load.Replaced {
		state = "replaced"
	}
	fmt.Printf("%s family %s on %s\n", state, resp.Load.Family, *addr)
	return nil
}

// specSource re-reads the -s file so the daemon gets the exact text the
// cold CLI would parse. loadInputs already validated it.
func specSource(fs *flag.FlagSet) string {
	if f := fs.Lookup("s"); f != nil && f.Value.String() != "" {
		if data, err := os.ReadFile(f.Value.String()); err == nil {
			return string(data)
		}
	}
	return ""
}

func clientGen(args []string) error {
	fs := flag.NewFlagSet("client gen", flag.ContinueOnError)
	addr, tenant, family, wait := dialFlags(fs)
	noSummary := fs.Bool("no-summary", false, "disable code summary")
	parallel := fs.Int("parallel", 0, "exploration workers (0 = daemon GOMAXPROCS)")
	strict := fs.Bool("strict", false, "fail fast on per-path panics")
	solverBudget := fs.Int("solver-budget", 0, "per-query solver step budget")
	solverTimeout := fs.Duration("solver-timeout", 0, "per-query solver wall-clock budget")
	workers := fs.Int("workers", 0, "shard the final pass across N daemon-side worker subprocesses")
	rulesPath := fs.String("r", "", "rule set overriding the family's rules for this request")
	outPath := fs.String("o", "", "write the returned test cases to this file")
	metricsOut := fs.String("metrics-out", "", "write the daemon's run report (JSON) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *family == "" {
		return fmt.Errorf("client gen requires -family")
	}
	req := &daemon.Request{
		Op:     daemon.OpGen,
		Tenant: *tenant,
		Family: *family,
		Gen: &daemon.GenParams{
			NoSummary:       *noSummary,
			Parallel:        *parallel,
			Strict:          *strict,
			SolverBudget:    *solverBudget,
			SolverTimeoutNS: int64(*solverTimeout),
			Workers:         *workers,
		},
	}
	if *rulesPath != "" {
		rs, err := readRules(*rulesPath)
		if err != nil {
			return err
		}
		req.Rules = rs.String()
	}
	resp, err := do(*addr, *wait, req)
	if err != nil {
		return err
	}
	g := resp.Gen
	heat := "cold"
	if g.WarmHit {
		heat = "warm"
	}
	fmt.Printf("family %s: %d test case templates in %v (%s: %d live solver calls, %d journal hits)\n",
		*family, g.NumTemplates, time.Duration(g.WallNS).Round(time.Millisecond), heat, g.SMTCalls, g.JournalHits)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(g.Templates), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %d test cases to %s\n", g.NumTemplates, *outPath)
	}
	if *metricsOut != "" {
		if g.Report == nil {
			return fmt.Errorf("daemon response carried no report")
		}
		if err := obs.WriteFileAtomic(*metricsOut, g.Report); err != nil {
			return err
		}
		fmt.Printf("  wrote run report to %s\n", *metricsOut)
	}
	return nil
}

func clientRegress(args []string) error {
	fs := flag.NewFlagSet("client regress", flag.ContinueOnError)
	addr, tenant, family, wait := dialFlags(fs)
	rulesNew := fs.String("rules-new", "", "updated rule set file")
	mutate := fs.Int("mutate", 0, "derive the new rules by bumping N action arguments of the base rules")
	emitRules := fs.String("emit-rules", "", "write the effective new rule set to this file")
	noSummary := fs.Bool("no-summary", false, "disable code summary")
	parallel := fs.Int("parallel", 0, "exploration workers")
	outPath := fs.String("o", "", "write the incremental test cases to this file")
	metricsOut := fs.String("metrics-out", "", "write the daemon's run report (JSON) to this file")
	// -mutate needs a base rule set: -corpus/-r supply it exactly like
	// the cold regress CLI.
	_, baseRules, _, _, err := loadInputs(fs, args)
	if err != nil {
		return err
	}
	if *family == "" {
		return fmt.Errorf("client regress requires -family")
	}
	if *rulesNew == "" && *mutate <= 0 {
		return fmt.Errorf("client regress requires -rules-new <file> or -mutate N")
	}
	newRules, err := loadNewRules(*rulesNew, *mutate, baseRules)
	if err != nil {
		return err
	}
	if *emitRules != "" {
		if err := os.WriteFile(*emitRules, []byte(newRules.String()), 0o644); err != nil {
			return err
		}
	}
	resp, err := do(*addr, *wait, &daemon.Request{
		Op:     daemon.OpRegress,
		Tenant: *tenant,
		Family: *family,
		Regress: &daemon.RegressParams{
			NewRules:  newRules.String(),
			NoSummary: *noSummary,
			Parallel:  *parallel,
		},
	})
	if err != nil {
		return err
	}
	r := resp.Regress
	fmt.Printf("family %s: rule update applied, %d test case templates current\n", *family, r.NumTemplates)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(r.Templates), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %d test cases to %s\n", r.NumTemplates, *outPath)
	}
	if *metricsOut != "" {
		if r.Report == nil {
			return fmt.Errorf("daemon response carried no report")
		}
		if err := obs.WriteFileAtomic(*metricsOut, r.Report); err != nil {
			return err
		}
		fmt.Printf("  wrote run report to %s\n", *metricsOut)
	}
	return nil
}

func clientStatus(args []string) error {
	fs := flag.NewFlagSet("client status", flag.ContinueOnError)
	addr, tenant, _, wait := dialFlags(fs)
	asJSON := fs.Bool("json", false, "print the raw status response as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := do(*addr, *wait, &daemon.Request{Op: daemon.OpStatus, Tenant: *tenant})
	if err != nil {
		return err
	}
	st := resp.Status
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Printf("daemon %s: up %v, %d requests (%d warm hits, %d store conflicts), %d in flight, %d queued\n",
		st.Addr, time.Duration(st.UptimeNS).Round(time.Second),
		st.RequestsServed, st.WarmHits, st.StoreConflicts, st.Inflight, st.QueueDepth)
	for _, f := range st.Families {
		fmt.Printf("  family %-12s gens=%d regresses=%d warm_hits=%d\n", f.Name, f.Gens, f.Regresses, f.WarmHits)
	}
	return nil
}

func clientUnload(args []string) error {
	fs := flag.NewFlagSet("client unload", flag.ContinueOnError)
	addr, tenant, family, wait := dialFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *family == "" {
		return fmt.Errorf("client unload requires -family")
	}
	resp, err := do(*addr, *wait, &daemon.Request{Op: daemon.OpUnload, Tenant: *tenant, Family: *family})
	if err != nil {
		return err
	}
	fmt.Printf("unloaded family %s\n", resp.Load.Family)
	return nil
}
