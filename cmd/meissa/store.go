package main

import (
	"flag"
	"fmt"
	"time"

	meissa "repro"
)

// cmdStore manages the disk-backed verdict store:
//
//	meissa store info   -store FILE (-p prog.p4 [-r rules.txt] | -corpus NAME)
//	meissa store import -store FILE -journal FILE (-p ... | -corpus NAME)
//	meissa store export -store FILE -journal FILE (-p ... | -corpus NAME)
//
// import folds an existing checkpoint journal into the store (the
// journal→store migration for runs checkpointed before the store
// existed); export materializes the stored verdicts back out as a
// resume journal; info prints what the store holds for the program
// family. All three need the program/rules/options because store
// families and journal fingerprints are content-addressed.
func cmdStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: meissa store <info|import|export> -store FILE [flags]")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("store "+verb, flag.ContinueOnError)
	storePath := fs.String("store", "", "verdict store file (required)")
	journalPath := fs.String("journal", "", "checkpoint journal file (import source / export destination)")
	noSummary := fs.Bool("no-summary", false, "match runs that disabled code summary (affects the family fingerprint)")
	quiet := fs.Bool("quiet", false, "suppress progress output on stderr")
	prog, rs, specs, _, err := loadInputs(fs, rest)
	if err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("store %s requires -store <file>", verb)
	}
	_ = quiet
	opts := meissa.DefaultOptions()
	opts.CodeSummary = !*noSummary
	opts.StorePath = *storePath
	sys, err := meissa.New(prog, rs, specs, opts)
	if err != nil {
		return err
	}

	switch verb {
	case "info":
		st, err := sys.StoreStatus()
		if err != nil {
			return err
		}
		fmt.Printf("store %s: page size %d, txid %d\n", st.Path, st.PageSize, st.Txid)
		fmt.Printf("  family %016x (journal fingerprint %016x)\n", st.Family, st.Fingerprint)
		if !st.Present {
			fmt.Println("  family not present (cold store for this program/options)")
			return nil
		}
		fmt.Printf("  records %d, cache entries %d, rules hash %016x (%d bytes of rules text)\n",
			st.Records, st.CacheEntries, st.RulesHash, len(st.Rules))
		return nil

	case "import":
		if *journalPath == "" {
			return fmt.Errorf("store import requires -journal <file>")
		}
		start := time.Now()
		rep, err := sys.StoreImport(*journalPath)
		if err != nil {
			return err
		}
		fmt.Printf("imported %s into %s in %v: %d records committed, %d duplicates skipped, %d invalidated\n",
			*journalPath, *storePath, time.Since(start).Round(time.Millisecond),
			rep.Committed, rep.Duplicates, rep.Invalidated)
		return nil

	case "export":
		if *journalPath == "" {
			return fmt.Errorf("store export requires -journal <file>")
		}
		start := time.Now()
		rep, err := sys.StoreExport(*journalPath)
		if err != nil {
			return err
		}
		fmt.Printf("exported %d records from %s to %s in %v (resume with: gen -checkpoint %s -resume)\n",
			rep.Warmed, *storePath, *journalPath, time.Since(start).Round(time.Millisecond), *journalPath)
		return nil

	default:
		return fmt.Errorf("unknown store verb %q (want info, import, or export)", verb)
	}
}
