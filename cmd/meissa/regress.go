package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	meissa "repro"
	"repro/internal/obs"
	"repro/internal/rulediff"
	"repro/internal/rules"
	"repro/internal/smt"
)

// cmdRegress runs rule-diff-driven incremental regression testing: given
// a baseline run's checkpoint journal and an updated rule set, it
// re-explores only the paths the rule delta touches and reports how much
// solver work the journal reuse avoided. The incremental output is
// byte-identical to a cold full run on the new rules (-o files diff
// clean against `meissa gen` on the same inputs).
func cmdRegress(args []string) error {
	fs := flag.NewFlagSet("regress", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "baseline checkpoint journal (written by gen -checkpoint)")
	storePath := fs.String("store", "", "durable verdict store holding the baseline (alternative to -baseline)")
	storeWait := fs.Duration("store-wait", 0, "bounded retry when the store is locked by another process (0 = fail fast)")
	rulesOld := fs.String("rules-old", "", "rule set the baseline was generated under (default: the -corpus/-r rules)")
	rulesNew := fs.String("rules-new", "", "updated rule set file")
	mutate := fs.Int("mutate", 0, "derive the new rules by bumping N action arguments of the old rules (instead of -rules-new)")
	checkpointPath := fs.String("checkpoint", "", "rebased journal path (default <baseline>.next)")
	emitRules := fs.String("emit-rules", "", "write the effective new rule set to this file")
	reportPath := fs.String("report", "", "write the regress report (JSON) to this file")
	outPath := fs.String("o", "", "write the incremental test cases to this file (deterministic format)")
	noSummary := fs.Bool("no-summary", false, "disable code summary (basic framework)")
	parallel := fs.Int("parallel", 0, "exploration workers (0 = GOMAXPROCS, 1 = sequential)")
	watch := fs.Bool("watch", false, "keep watching -rules-new and re-regress on every change")
	interval := fs.Duration("interval", 2*time.Second, "watch poll interval")
	maxFailures := fs.Int("max-failures", 10, "exit non-zero after N consecutive watch failures (0 = never)")
	verbose := fs.Bool("v", false, "print per-phase progress on stderr")
	ob := registerObsFlags(fs)
	prog, rs, specs, _, err := loadInputs(fs, args)
	if err != nil {
		return err
	}
	if err := ob.activate(*verbose); err != nil {
		return err
	}
	if *baseline == "" && *storePath == "" {
		return fmt.Errorf("regress requires -baseline <journal> or -store <file>")
	}
	if *baseline != "" && *storePath != "" {
		return fmt.Errorf("-baseline and -store are mutually exclusive (the store supplies the baseline)")
	}
	if *rulesNew == "" && *mutate <= 0 {
		return fmt.Errorf("regress requires -rules-new <file> or -mutate N")
	}
	if *watch && *rulesNew == "" {
		return fmt.Errorf("-watch requires -rules-new (the file to watch)")
	}
	oldRules := rs
	if *rulesOld != "" {
		if oldRules, err = readRules(*rulesOld); err != nil {
			return err
		}
	}
	newRules, err := loadNewRules(*rulesNew, *mutate, oldRules)
	if err != nil {
		return err
	}
	if *emitRules != "" {
		if err := os.WriteFile(*emitRules, []byte(newRules.String()), 0o644); err != nil {
			return err
		}
	}
	ckpt := *checkpointPath
	if ckpt == "" && *baseline != "" {
		ckpt = *baseline + ".next"
	}

	opts := meissa.DefaultOptions()
	opts.CodeSummary = !*noSummary
	opts.Parallelism = *parallel
	opts.Checkpoint = ckpt
	opts.StoreWait = *storeWait
	if *watch {
		// One verdict cache survives the whole watch session; each
		// iteration invalidates only the changed branches.
		opts.VerdictCache = smt.NewVerdictCache()
	}

	runOnce := func(old, new *rules.Set, base, ckpt string) (*meissa.RegressResult, error) {
		o := opts
		o.Checkpoint = ckpt
		var res *meissa.RegressResult
		var err error
		if *storePath != "" {
			// Store-backed: the store supplies both the old rules (unless
			// -rules-old overrode them) and the materialized baseline, and
			// the incremental result commits back atomically — so watch
			// iterations need no journal-path juggling.
			o.StorePath = *storePath
			res, err = meissa.RegressStore(meissa.RegressInput{
				Prog:     prog,
				OldRules: old,
				NewRules: new,
				Specs:    specs,
				Opts:     o,
				Program:  prog.Name,
			})
		} else {
			res, err = meissa.Regress(meissa.RegressInput{
				Prog:     prog,
				OldRules: old,
				NewRules: new,
				Specs:    specs,
				Opts:     o,
				Baseline: base,
				Program:  prog.Name,
			})
		}
		if err != nil {
			return nil, err
		}
		printRegress(res)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return nil, err
			}
			if err := meissa.WriteTemplates(f, res.Gen.Templates); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			fmt.Printf("  wrote %d test cases to %s\n", len(res.Gen.Templates), *outPath)
		}
		if *reportPath != "" {
			if err := obs.WriteFileAtomic(*reportPath, res.Report); err != nil {
				return nil, err
			}
			obs.Infof("meissa: wrote regress report to %s", *reportPath)
		}
		return res, nil
	}

	firstOld := oldRules
	if *storePath != "" && *rulesOld == "" {
		// Store-backed with no explicit old rules: the store's committed
		// rule set IS the baseline; don't guess from -corpus/-r.
		firstOld = nil
	}
	res, err := runOnce(firstOld, newRules, *baseline, ckpt)
	if err != nil {
		return err
	}
	if !*watch {
		return ob.finish(res.Report.Run)
	}

	// Watch mode: each completed iteration's checkpoint becomes the next
	// baseline (alternating between two paths so source and destination
	// always differ), and the new rules become the old. A store-backed
	// watch needs neither: every iteration reads the baseline from and
	// commits back to the store.
	//
	// The loop must survive transient failures (rule file mid-write,
	// journal on a flaky mount, ENOSPC): each failure bumps the
	// regress.watch_failures counter and backs the poll off exponentially
	// (capped at 30s or 16x the interval, whichever is larger); any
	// success resets both. A run of *maxFailures consecutive failures
	// means the world is durably broken — exit non-zero rather than spin
	// silently forever.
	curBase, curCkpt := ckpt, ckpt+".alt"
	if *storePath != "" {
		curBase, curCkpt = "", ckpt // unused / kept verbatim (RegressStore defaults "" to a temp path)
	}
	curRules := newRules
	lastText := newRules.String()
	failures := obs.GetCounter("regress.watch_failures")
	consecutive := 0
	delay := *interval
	maxDelay := 30 * time.Second
	if d := 16 * *interval; d > maxDelay {
		maxDelay = d
	}
	fail := func(format string, args ...any) error {
		failures.Inc()
		consecutive++
		obs.Warnf(format, args...)
		if *maxFailures > 0 && consecutive >= *maxFailures {
			return fmt.Errorf("watch: %d consecutive failures, giving up (last: %s)",
				consecutive, fmt.Sprintf(format, args...))
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
		obs.Progressf("regress: watch: backing off to %v after %d consecutive failure(s)", delay, consecutive)
		return nil
	}
	ok := func() {
		consecutive = 0
		delay = *interval
	}
	obs.Infof("meissa: watching %s (poll %v; interrupt to stop)", *rulesNew, *interval)
	for {
		time.Sleep(delay)
		next, err := readRules(*rulesNew)
		if err != nil {
			if ferr := fail("regress: watch: %v", err); ferr != nil {
				return ferr
			}
			continue
		}
		if next.String() == lastText {
			ok() // a readable, unchanged file is a healthy world
			continue
		}
		lastText = next.String()
		if curRules != nil && curRules.Equal(next) {
			ok()
			continue // cosmetic edit: canonically identical
		}
		if _, err := runOnce(curRules, next, curBase, curCkpt); err != nil {
			if ferr := fail("regress: watch iteration failed: %v", err); ferr != nil {
				return ferr
			}
			continue
		}
		ok()
		curRules = next
		if *storePath != "" {
			curRules = nil // next iteration reads the committed baseline from the store
		} else {
			curBase, curCkpt = curCkpt, curBase
		}
	}
}

// loadNewRules resolves the updated rule set: an explicit file, or a
// deterministic -mutate N arg bump of the old rules.
func loadNewRules(path string, mutate int, old *rules.Set) (*rules.Set, error) {
	if path != "" {
		return readRules(path)
	}
	mutated, n := rulediff.MutateArgs(old, mutate)
	if n == 0 {
		return nil, fmt.Errorf("-mutate %d changed no entries (no action arguments in the rule set)", mutate)
	}
	return mutated, nil
}

func printRegress(res *meissa.RegressResult) {
	rep := res.Report
	fmt.Printf("regress %s: %d table(s) changed (+%d -%d ~%d entries) in %v\n",
		rep.Program, len(rep.Delta.TablesChanged), rep.Delta.EntriesAdded,
		rep.Delta.EntriesRemoved, rep.Delta.EntriesModified,
		time.Duration(rep.WallNS).Round(time.Millisecond))
	j := rep.Journal
	fmt.Printf("  journal: %d/%d baseline verdicts retained (%d invalidated, %d unindexed)\n",
		j.Retained, j.Baseline, j.Invalidated, j.Unindexed)
	t := rep.Templates
	fmt.Printf("  templates: %d (%d unchanged, %d added, %d retired)\n",
		t.Current, t.Unchanged, t.Added, t.Retired)
	q := rep.Queries
	fmt.Printf("  queries: %d live, %d avoided (%d journal + %d cache, %.0f%% reuse)\n",
		q.Live, q.Avoided, q.JournalHits, q.CacheHits, 100*q.Reuse)
}
