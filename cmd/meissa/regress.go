package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	meissa "repro"
	"repro/internal/obs"
	"repro/internal/rulediff"
	"repro/internal/rules"
	"repro/internal/smt"
)

// cmdRegress runs rule-diff-driven incremental regression testing: given
// a baseline run's checkpoint journal and an updated rule set, it
// re-explores only the paths the rule delta touches and reports how much
// solver work the journal reuse avoided. The incremental output is
// byte-identical to a cold full run on the new rules (-o files diff
// clean against `meissa gen` on the same inputs).
func cmdRegress(args []string) error {
	fs := flag.NewFlagSet("regress", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "baseline checkpoint journal (required; written by gen -checkpoint)")
	rulesOld := fs.String("rules-old", "", "rule set the baseline was generated under (default: the -corpus/-r rules)")
	rulesNew := fs.String("rules-new", "", "updated rule set file")
	mutate := fs.Int("mutate", 0, "derive the new rules by bumping N action arguments of the old rules (instead of -rules-new)")
	checkpointPath := fs.String("checkpoint", "", "rebased journal path (default <baseline>.next)")
	emitRules := fs.String("emit-rules", "", "write the effective new rule set to this file")
	reportPath := fs.String("report", "", "write the regress report (JSON) to this file")
	outPath := fs.String("o", "", "write the incremental test cases to this file (deterministic format)")
	noSummary := fs.Bool("no-summary", false, "disable code summary (basic framework)")
	parallel := fs.Int("parallel", 0, "exploration workers (0 = GOMAXPROCS, 1 = sequential)")
	watch := fs.Bool("watch", false, "keep watching -rules-new and re-regress on every change")
	interval := fs.Duration("interval", 2*time.Second, "watch poll interval")
	verbose := fs.Bool("v", false, "print per-phase progress on stderr")
	ob := registerObsFlags(fs)
	prog, rs, specs, _, err := loadInputs(fs, args)
	if err != nil {
		return err
	}
	if err := ob.activate(*verbose); err != nil {
		return err
	}
	if *baseline == "" {
		return fmt.Errorf("regress requires -baseline <journal>")
	}
	if *rulesNew == "" && *mutate <= 0 {
		return fmt.Errorf("regress requires -rules-new <file> or -mutate N")
	}
	if *watch && *rulesNew == "" {
		return fmt.Errorf("-watch requires -rules-new (the file to watch)")
	}
	oldRules := rs
	if *rulesOld != "" {
		if oldRules, err = readRules(*rulesOld); err != nil {
			return err
		}
	}
	newRules, err := loadNewRules(*rulesNew, *mutate, oldRules)
	if err != nil {
		return err
	}
	if *emitRules != "" {
		if err := os.WriteFile(*emitRules, []byte(newRules.String()), 0o644); err != nil {
			return err
		}
	}
	ckpt := *checkpointPath
	if ckpt == "" {
		ckpt = *baseline + ".next"
	}

	opts := meissa.DefaultOptions()
	opts.CodeSummary = !*noSummary
	opts.Parallelism = *parallel
	opts.Checkpoint = ckpt
	if *watch {
		// One verdict cache survives the whole watch session; each
		// iteration invalidates only the changed branches.
		opts.VerdictCache = smt.NewVerdictCache()
	}

	runOnce := func(old, new *rules.Set, base, ckpt string) (*meissa.RegressResult, error) {
		o := opts
		o.Checkpoint = ckpt
		res, err := meissa.Regress(meissa.RegressInput{
			Prog:     prog,
			OldRules: old,
			NewRules: new,
			Specs:    specs,
			Opts:     o,
			Baseline: base,
			Program:  prog.Name,
		})
		if err != nil {
			return nil, err
		}
		printRegress(res)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return nil, err
			}
			if err := meissa.WriteTemplates(f, res.Gen.Templates); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			fmt.Printf("  wrote %d test cases to %s\n", len(res.Gen.Templates), *outPath)
		}
		if *reportPath != "" {
			if err := obs.WriteFileAtomic(*reportPath, res.Report); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "meissa: wrote regress report to %s\n", *reportPath)
		}
		return res, nil
	}

	res, err := runOnce(oldRules, newRules, *baseline, ckpt)
	if err != nil {
		return err
	}
	if !*watch {
		return ob.finish(res.Report.Run)
	}

	// Watch mode: each completed iteration's checkpoint becomes the next
	// baseline (alternating between two paths so source and destination
	// always differ), and the new rules become the old.
	curBase, curCkpt := ckpt, ckpt+".alt"
	curRules := newRules
	lastText := newRules.String()
	fmt.Fprintf(os.Stderr, "meissa: watching %s (poll %v; interrupt to stop)\n", *rulesNew, *interval)
	for {
		time.Sleep(*interval)
		next, err := readRules(*rulesNew)
		if err != nil {
			obs.Warnf("regress: watch: %v", err)
			continue
		}
		if next.String() == lastText {
			continue
		}
		lastText = next.String()
		if curRules.Equal(next) {
			continue // cosmetic edit: canonically identical
		}
		if _, err := runOnce(curRules, next, curBase, curCkpt); err != nil {
			obs.Warnf("regress: watch iteration failed: %v", err)
			continue
		}
		curBase, curCkpt = curCkpt, curBase
		curRules = next
	}
}

// loadNewRules resolves the updated rule set: an explicit file, or a
// deterministic -mutate N arg bump of the old rules.
func loadNewRules(path string, mutate int, old *rules.Set) (*rules.Set, error) {
	if path != "" {
		return readRules(path)
	}
	mutated, n := rulediff.MutateArgs(old, mutate)
	if n == 0 {
		return nil, fmt.Errorf("-mutate %d changed no entries (no action arguments in the rule set)", mutate)
	}
	return mutated, nil
}

func printRegress(res *meissa.RegressResult) {
	rep := res.Report
	fmt.Printf("regress %s: %d table(s) changed (+%d -%d ~%d entries) in %v\n",
		rep.Program, len(rep.Delta.TablesChanged), rep.Delta.EntriesAdded,
		rep.Delta.EntriesRemoved, rep.Delta.EntriesModified,
		time.Duration(rep.WallNS).Round(time.Millisecond))
	j := rep.Journal
	fmt.Printf("  journal: %d/%d baseline verdicts retained (%d invalidated, %d unindexed)\n",
		j.Retained, j.Baseline, j.Invalidated, j.Unindexed)
	t := rep.Templates
	fmt.Printf("  templates: %d (%d unchanged, %d added, %d retired)\n",
		t.Current, t.Unchanged, t.Added, t.Retired)
	q := rep.Queries
	fmt.Printf("  queries: %d live, %d avoided (%d journal + %d cache, %.0f%% reuse)\n",
		q.Live, q.Avoided, q.JournalHits, q.CacheHits, 100*q.Reuse)
}
