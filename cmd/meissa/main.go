// Command meissa is the CLI front door to the testing system: it
// generates full-path-coverage test cases for a data plane program and
// optionally runs them against the reference software target (with
// optional injected compiler faults, for demonstrating non-code bug
// detection).
//
// Usage:
//
//	meissa gen  -p prog.p4 [-r rules.txt] [-s spec.lpi] [-no-summary]
//	meissa test -p prog.p4 [-r rules.txt] [-s spec.lpi] [-fault setvalid:hdr] [-trace]
//	            [-udp] [-retries N] [-case-timeout D] [-shake drop=0.3,seed=42]
//	meissa corpus            # list the built-in evaluation corpus
//	meissa dump -corpus gw-2 # print a corpus program's source and rules
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	meissa "repro"
	"repro/internal/driver"
	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/programs"
	"repro/internal/rules"
	"repro/internal/spec"
	"repro/internal/switchsim"
	"repro/internal/sym"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "test":
		err = cmdTest(os.Args[2:])
	case "regress":
		err = cmdRegress(os.Args[2:])
	case "corpus":
		err = cmdCorpus()
	case "dump":
		err = cmdDump(os.Args[2:])
	case "checkmetrics":
		err = cmdCheckMetrics(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "store":
		err = cmdStore(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "client":
		err = cmdClient(os.Args[2:])
	case "work":
		// The sharded-generation worker. With no flags it speaks the
		// internal/shard frame protocol on stdin/stdout (the hidden
		// subprocess transport, never invoked by hand); with -connect it
		// dials a coordinator's listener and serves one run over TCP —
		// the remote-host worker mode.
		err = cmdWork(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "meissa:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  meissa gen  -p prog.p4 [-r rules.txt] [-s spec.lpi] [-no-summary] [-parallel N] [-v] [-quiet]
              [-checkpoint FILE [-resume]] [-store FILE [-store-wait D]] [-strict] [-solver-budget N] [-solver-timeout D]
              [-workers N|tcp://host:port [-remote-workers N] [-lease-timeout D] [-chaos-kill N] [-chaos-seed N]]
              [-metrics-out report.json] [-pprof-addr host:port] [-o cases.txt]
  meissa test -p prog.p4 [-r rules.txt] [-s spec.lpi] [-fault kind:arg[,..]] [-trace] [-parallel N]
              [-udp] [-retries N] [-case-timeout D] [-recv-timeout D] [-breaker N] [-v] [-quiet]
              [-metrics-out report.json] [-pprof-addr host:port]
              [-shake drop=P,dup=P,reorder=P,corrupt=P,delay=D,seed=N]
  meissa regress [-baseline base.journal | -store FILE] [-p prog.p4 | -corpus NAME] [-rules-old FILE]
              [-rules-new FILE | -mutate N] [-checkpoint FILE] [-emit-rules FILE]
              [-report regress.json] [-o cases.txt] [-parallel N] [-no-summary]
              [-watch [-interval D] [-max-failures N]] [-v] [-quiet]
  meissa store <info|import|export> -store FILE [-journal FILE] (-p prog.p4 [-r rules.txt] | -corpus NAME)
  meissa serve -store FILE [-addr unix://path|tcp://host:port] [-store-wait D]
              [-max-concurrent N] [-max-coordinators N] [-drain D] [-pprof-addr host:port]
  meissa client <load|gen|regress|status|unload> -addr ADDR [-tenant T] [-family NAME]
              load:    (-p prog.p4 [-r rules.txt] [-s spec.lpi] | -corpus NAME)
              gen:     [-no-summary] [-parallel N] [-workers N] [-r rules.txt] [-o cases.txt] [-metrics-out report.json]
              regress: (-rules-new FILE | -mutate N (-corpus NAME | -r FILE)) [-emit-rules FILE] [-o cases.txt]
  meissa corpus
  meissa dump -corpus <name>
  meissa checkmetrics <report.json>
  meissa top [-addr host:port] [-interval D] [-once]

common flags: [-log-level quiet|normal|verbose|debug] [-log-json]`)
}

// loadInputs reads the program, rule set and specs named by flags, or a
// built-in corpus program via -corpus.
func loadInputs(fs *flag.FlagSet, args []string) (*p4.Program, *rules.Set, []*spec.Spec, *flag.FlagSet, error) {
	progPath := fs.String("p", "", "P4 program file")
	rulesPath := fs.String("r", "", "table rule set file")
	specPath := fs.String("s", "", "LPI intent spec file")
	corpusName := fs.String("corpus", "", "use a built-in corpus program instead of -p/-r")
	if err := fs.Parse(args); err != nil {
		return nil, nil, nil, nil, err
	}

	if *corpusName != "" {
		for _, p := range programs.All() {
			if p.Name == *corpusName {
				rs := p.Rules
				if *rulesPath != "" {
					// -r overrides the corpus program's built-in rules (the
					// regress smoke path: corpus program, mutated rule file).
					var err error
					if rs, err = readRules(*rulesPath); err != nil {
						return nil, nil, nil, nil, err
					}
				}
				return p.Prog, rs, nil, fs, nil
			}
		}
		return nil, nil, nil, nil, fmt.Errorf("unknown corpus program %q", *corpusName)
	}
	if *progPath == "" {
		return nil, nil, nil, nil, fmt.Errorf("missing -p <program> (or -corpus <name>)")
	}
	src, err := os.ReadFile(*progPath)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	prog, err := p4.Parse(string(src))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rs := rules.NewSet()
	if *rulesPath != "" {
		if rs, err = readRules(*rulesPath); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	var specs []*spec.Spec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		specs, err = spec.Parse(string(data))
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	return prog, rs, specs, fs, nil
}

// readRules loads and parses a rule-set file.
func readRules(path string) (*rules.Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rs, err := rules.Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	noSummary := fs.Bool("no-summary", false, "disable code summary (basic framework)")
	parallel := fs.Int("parallel", 0, "exploration workers (0 = GOMAXPROCS, 1 = sequential)")
	verbose := fs.Bool("v", false, "print each template's constraints")
	checkpoint := fs.String("checkpoint", "", "journal file making generation crash-safe")
	resume := fs.Bool("resume", false, "resume from the -checkpoint journal of an interrupted run")
	storePath := fs.String("store", "", "durable verdict store file: warm-start from it, commit results back")
	storeWait := fs.Duration("store-wait", 0, "bounded retry when the store is locked by another process (0 = fail fast)")
	strict := fs.Bool("strict", false, "fail fast on per-path panics instead of isolating them")
	solverBudget := fs.Int("solver-budget", 0, "per-query solver backtracking-step budget (0 = default)")
	solverTimeout := fs.Duration("solver-timeout", 0, "per-query solver wall-clock budget (0 = none)")
	workers := fs.String("workers", "", "shard the final pass: N worker subprocesses, or tcp://host:port to accept remote `work -connect` dialers (0/empty = in-process)")
	remoteWorkers := fs.Int("remote-workers", 2, "worker slot count when -workers is a listen address")
	leaseTimeout := fs.Duration("lease-timeout", 0, "shard lease progress deadline (0 = 10s default)")
	chaosKill := fs.Int("chaos-kill", 0, "SIGKILL N random workers mid-run (fault-injection testing)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for -chaos-kill victim selection")
	chaosSlow := fs.Duration("chaos-slow", 0, "per-path worker sleep so injected kills land mid-generation")
	outPath := fs.String("o", "", "write generated test cases to this file (deterministic format)")
	ob := registerObsFlags(fs)
	prog, rs, specs, _, err := loadInputs(fs, args)
	if err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if err := ob.activate(*verbose); err != nil {
		return err
	}
	opts := meissa.DefaultOptions()
	opts.CodeSummary = !*noSummary
	opts.Parallelism = *parallel
	opts.Checkpoint = *checkpoint
	opts.Resume = *resume
	opts.StorePath = *storePath
	opts.StoreWait = *storeWait
	opts.Strict = *strict
	opts.SolverSearchBudget = *solverBudget
	opts.SolverCheckTimeout = *solverTimeout
	opts.ShardWorkers, opts.ShardListen, err = parseWorkers(*workers, *remoteWorkers)
	if err != nil {
		return err
	}
	opts.LeaseTimeout = *leaseTimeout
	opts.ShardChaosKills = *chaosKill
	opts.ShardChaosSeed = *chaosSeed
	opts.ShardPathSleep = *chaosSlow
	sys, err := meissa.New(prog, rs, specs, opts)
	if err != nil {
		return err
	}
	gen, err := sys.Generate()
	if err != nil {
		return err
	}
	fmt.Printf("program %s: %d test case templates in %v\n",
		prog.Name, len(gen.Templates), gen.Duration.Round(time.Millisecond))
	fmt.Printf("  possible paths: 10^%.1f -> 10^%.1f, SMT calls: %d\n",
		gen.PossiblePathsLog10Before, gen.PossiblePathsLog10After, gen.SMTCalls)
	if gen.SummaryStats != nil {
		for _, ps := range gen.SummaryStats.Pipelines {
			fmt.Printf("  pipeline %-12s valid paths %5d, public pre-conditions %d",
				ps.Name, ps.ValidPaths, ps.PublicConstraints)
			if ps.Unknowns > 0 {
				fmt.Printf(", unknown verdicts %d (%d budget-exhausted)", ps.Unknowns, ps.BudgetExhausted)
			}
			fmt.Println()
		}
	}
	if gen.SMTUnknowns > 0 {
		fmt.Printf("  unknown verdicts: %d (%d budget-exhausted); affected paths kept conservatively\n",
			gen.SMTUnknowns, gen.SMTBudgetExhausted)
	}
	if gen.JournalHits > 0 {
		fmt.Printf("  journal: %d solver interactions answered from checkpoint\n", gen.JournalHits)
	}
	if sh := gen.Shard; sh != nil {
		if sh.Fallback {
			fmt.Printf("  shard: fell back to in-process engine (%s)\n", sh.FallbackReason)
		} else {
			fmt.Printf("  shard: %d units over %d workers: %d leases issued, %d expired, %d units quarantined, %d restarts, %d kills injected\n",
				sh.Units, sh.Workers, sh.LeasesIssued, sh.LeasesExpired, sh.UnitsQuarantined, sh.WorkerRestarts, sh.KillsInjected)
		}
	}
	if st := gen.Store; st != nil {
		fmt.Printf("  store: %d verdicts warmed, %d cache entries seeded, %d invalidated by rule delta, %d committed (%d duplicates)\n",
			st.Warmed, st.CacheSeeded, st.Invalidated, st.Committed, st.Duplicates)
	}
	if gen.Recovered > 0 {
		fmt.Printf("  WARNING: %d path(s) panicked and were skipped:\n", gen.Recovered)
		for _, pe := range gen.PathErrors {
			fmt.Printf("    %v\n", pe)
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := writeTemplates(f, gen.Templates); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %d test cases to %s\n", len(gen.Templates), *outPath)
	}
	if *verbose {
		for _, t := range gen.Templates {
			fmt.Printf("template %d (dropped=%v):\n", t.ID, t.Dropped)
			for _, c := range t.Constraints {
				fmt.Printf("  %s\n", c)
			}
		}
	}
	return ob.finish(genReport("gen", prog.Name, opts.Parallelism, gen))
}

// writeTemplates renders templates in a deterministic text format: runs
// of the same program + rules + options produce byte-identical files, so
// a resumed or incremental run can be diffed against a cold one.
func writeTemplates(w io.Writer, ts []*sym.Template) error {
	return meissa.WriteTemplates(w, ts)
}

// parseFaults parses -fault kind:arg[,kind:arg...].
func parseFaults(s string) (switchsim.Faults, error) {
	if s == "" {
		return nil, nil
	}
	var out switchsim.Faults
	for _, item := range strings.Split(s, ",") {
		kv := strings.SplitN(item, ":", 2)
		kind := kv[0]
		arg := ""
		if len(kv) == 2 {
			arg = kv[1]
		}
		switch kind {
		case "setvalid":
			out = append(out, switchsim.SetValidNoOp{Header: arg})
		case "checksum":
			out = append(out, switchsim.ChecksumSkip{Header: arg})
		case "compare":
			out = append(out, switchsim.WrongCompare{})
		case "extract":
			out = append(out, switchsim.ExtractNoValidity{Header: arg})
		case "overlap":
			ab := strings.SplitN(arg, "/", 2)
			if len(ab) != 2 {
				return nil, fmt.Errorf("overlap fault wants a/b, got %q", arg)
			}
			out = append(out, switchsim.FieldOverlap{A: ab[0], B: ab[1]})
		case "rules":
			out = append(out, switchsim.TableMissDefault{Table: arg})
		default:
			return nil, fmt.Errorf("unknown fault kind %q", kind)
		}
	}
	return out, nil
}

func cmdTest(args []string) error {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	faultSpec := fs.String("fault", "", "inject compiler faults: kind:arg[,kind:arg...]")
	trace := fs.Bool("trace", false, "print bug localization for the first failure")
	udp := fs.Bool("udp", false, "drive the target over a real UDP loopback socket")
	parallel := fs.Int("parallel", 0, "exploration workers (0 = GOMAXPROCS, 1 = sequential)")
	retries := fs.Int("retries", 2, "retransmissions per case after the first attempt")
	caseTimeout := fs.Duration("case-timeout", 0, "per-case deadline across all attempts (0 = derived)")
	recvTimeout := fs.Duration("recv-timeout", 200*time.Millisecond, "per-attempt capture window")
	window := fs.Int("window", driver.DefaultWindow, "in-flight cases for the pipelined engine (1 = lockstep)")
	breaker := fs.Int("breaker", 0, "trip after N consecutive target-crashing cases; rest short-circuit to lost (0 = off)")
	shake := fs.String("shake", "", "inject link faults: drop=P,dup=P,reorder=P,corrupt=P,delay=D,seed=N")
	verbose := fs.Bool("v", false, "print per-phase progress on stderr")
	ob := registerObsFlags(fs)
	prog, rs, specs, _, err := loadInputs(fs, args)
	if err != nil {
		return err
	}
	if err := ob.activate(*verbose); err != nil {
		return err
	}
	faults, err := parseFaults(*faultSpec)
	if err != nil {
		return err
	}
	linkFaults, err := driver.ParseLinkFaults(*shake)
	if err != nil {
		return err
	}
	opts := meissa.DefaultOptions()
	opts.Parallelism = *parallel
	sys, err := meissa.New(prog, rs, specs, opts)
	if err != nil {
		return err
	}
	gen, err := sys.Generate()
	if err != nil {
		return err
	}
	target, err := switchsim.Compile(prog, rs, faults)
	if err != nil {
		return err
	}
	if len(faults) > 0 {
		fmt.Println("injected faults:")
		for _, d := range faults.Describe() {
			fmt.Println("  -", d)
		}
	}

	var link driver.Link
	var loop *driver.Loopback
	var sw *driver.UDPSwitch
	if *udp {
		sw, err = driver.ServeUDP(target, "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer sw.Close()
		l, err := driver.DialUDP(sw.Addr())
		if err != nil {
			return err
		}
		defer l.Close()
		link = l
		fmt.Println("switch under test on", sw.Addr())
	} else {
		loop = driver.NewLoopback(target)
		link = loop
	}

	var shaken *driver.FaultyLink
	if linkFaults.Active() {
		shaken = driver.NewFaultyLink(link, linkFaults)
		link = shaken
		fmt.Println("link faults:", linkFaults)
	}

	d := sys.NewDriver(link, gen)
	d.Retries = *retries
	d.CaseTimeout = *caseTimeout
	d.RecvTimeout = *recvTimeout
	if *window > 0 {
		d.Window = *window
	}
	d.BreakerThreshold = *breaker
	driveSpan := obs.Begin("drive")
	rep, err := d.RunTemplates(gen.Templates)
	driveDur := driveSpan.End()
	if err != nil {
		return err
	}
	fmt.Println(rep.Summary())
	if rep.BreakerTripped {
		fmt.Printf("crash circuit breaker tripped after %d consecutive target crashes: %d cases short-circuited to lost\n",
			*breaker, rep.ShortCircuited)
	}
	for _, c := range rep.Skips {
		fmt.Printf("SKIP case %d: %s\n", c.ID, c.SkipReason)
	}
	for _, o := range rep.Failures() {
		fmt.Printf("%s case %d (%d attempts):\n", strings.ToUpper(o.Verdict.String()), o.Case.ID, o.Attempts)
		for _, m := range o.Mismatches {
			fmt.Println("  mismatch:", m)
		}
		for _, c := range o.ChecksumErrors {
			fmt.Println("  checksum:", c)
		}
		for _, v := range o.Violations {
			fmt.Println("  intent:", v)
		}
	}
	if shaken != nil {
		fmt.Println("link noise injected:", shaken.Stats())
	}
	if sw != nil && (sw.Crashes() > 0 || sw.Errors() > 0) {
		fmt.Printf("switch under test: %d target crashes, %d dropped, %d errors absorbed\n",
			sw.Crashes(), sw.Dropped(), sw.Errors())
	}
	if *trace && rep.Failed > 0 && loop != nil {
		fmt.Println()
		f := rep.Failures()[0]
		fmt.Println(meissa.Localize(gen, f, loop.Replay(f.Case.Entry, f.Case.Wire)))
	}
	orep := genReport("test", prog.Name, opts.Parallelism, gen)
	orep.WallNS = int64(gen.Duration + driveDur)
	orep.Phases = append(orep.Phases, obs.PhaseDur{Name: "drive", NS: int64(driveDur), Count: 1})
	orep.Driver = driverReport(rep, shaken, gen.Duration+rep.TimeToFirstVerdict, driveDur, d.Window)
	if err := ob.finish(orep); err != nil {
		return err
	}
	if rep.Failed > 0 || rep.Lost > 0 {
		os.Exit(1)
	}
	return nil
}

func cmdCorpus() error {
	fmt.Printf("%-10s %5s %6s %6s %9s  %s\n", "name", "LOC", "rules", "pipes", "switches", "description")
	for _, p := range programs.All() {
		fmt.Printf("%-10s %5d %6d %6d %9d  %s\n",
			p.Name, p.LOC(), p.Rules.LOC(), p.Pipes, p.Switches, p.Description)
	}
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ContinueOnError)
	name := fs.String("corpus", "", "corpus program name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, p := range programs.All() {
		if p.Name == *name {
			fmt.Println("// ---- program (normalized) ----")
			fmt.Println(p4.Print(p.Prog))
			fmt.Println("// ---- rules ----")
			fmt.Println(p.Rules.String())
			return nil
		}
	}
	return fmt.Errorf("unknown corpus program %q", *name)
}
