package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	meissa "repro"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/regress"
)

// obsFlags are the observability flags shared by gen and test:
// -metrics-out, -pprof-addr, -quiet, and the verbosity hookup for -v.
// Progress output goes to stderr only, so the deterministic stdout the
// checkpoint/resume diff tests rely on is untouched at any setting.
type obsFlags struct {
	metricsOut string
	pprofAddr  string
	quiet      bool
	verbose    bool
	logLevel   string
	logJSON    bool
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write a machine-readable run report (JSON) to this file at exit")
	fs.StringVar(&o.pprofAddr, "pprof-addr", "", "serve /debug/pprof, /debug/vars, /metrics and /metrics/delta on this address")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress progress and warning output on stderr (same as -log-level quiet)")
	fs.StringVar(&o.logLevel, "log-level", "", "stderr log level: quiet|normal|verbose|debug (overrides -quiet and -v)")
	fs.BoolVar(&o.logJSON, "log-json", false, "emit stderr log lines as JSON objects ({\"ts\",\"level\",\"msg\"})")
	return o
}

// activate applies the flags after parsing. verbose is passed by the
// caller because -v keeps its subcommand-specific stdout meaning (gen
// prints template constraints) on top of raising the stderr log level.
func (o *obsFlags) activate(verbose bool) error {
	o.verbose = verbose
	obs.SetLogJSON(o.logJSON)
	switch {
	case o.logLevel != "":
		lv, err := obs.ParseLevel(o.logLevel)
		if err != nil {
			return err
		}
		obs.SetLogLevel(lv)
	case o.quiet:
		obs.SetLogLevel(obs.LevelQuiet)
	case verbose:
		obs.SetLogLevel(obs.LevelVerbose)
	}
	if o.pprofAddr != "" {
		addr, err := obs.ServeDebug(o.pprofAddr)
		if err != nil {
			return err
		}
		obs.Infof("meissa: debug server on http://%s", addr)
	}
	return nil
}

// finish emits the end-of-run observability: the stderr phase/latency
// table (verbose or metrics runs, unless -quiet) and, with -metrics-out,
// the validated JSON run report with the full registry snapshot attached,
// written atomically.
func (o *obsFlags) finish(rep *obs.Report) error {
	if o.metricsOut == "" && !o.verbose {
		return nil
	}
	snap := obs.Default().Snapshot()
	if obs.LogLevel() > obs.LevelQuiet {
		snap.WriteText(os.Stderr)
	}
	if o.metricsOut == "" {
		return nil
	}
	rep.Registry = snap
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("metrics report failed validation: %w", err)
	}
	if err := obs.WriteFileAtomic(o.metricsOut, rep); err != nil {
		return err
	}
	obs.Infof("meissa: wrote run report to %s", o.metricsOut)
	return nil
}

// genReport builds the run report for a generation (the test subcommand
// extends it with the driver section).
func genReport(command, program string, parallelism int, gen *meissa.GenResult) *obs.Report {
	return gen.Report(command, program, parallelism)
}

// driverReport builds the test-execution section from a driver report and
// the optional shaken link. driveDur is the drive phase wall-clock and
// window the engine's in-flight window; together they yield the headline
// verdicts_per_sec throughput.
func driverReport(rep *driver.Report, shaken *driver.FaultyLink, firstVerdict, driveDur time.Duration, window int) *obs.DriverReport {
	d := &obs.DriverReport{
		Passed:            rep.Passed,
		Failed:            rep.Failed,
		Skipped:           rep.Skipped,
		Flaky:             rep.Flaky,
		Lost:              rep.Lost,
		Retransmissions:   rep.Retransmissions,
		TimeToFirstTestNS: int64(firstVerdict),
		Window:            window,
		BreakerTripped:    rep.BreakerTripped,
		ShortCircuited:    rep.ShortCircuited,
	}
	if verdicts := rep.Passed + rep.Failed + rep.Flaky + rep.Lost; verdicts > 0 && driveDur > 0 {
		d.VerdictsPerSec = float64(verdicts) / driveDur.Seconds()
	}
	if h, ok := obs.Default().Snapshot().Histograms["driver.case_latency_ns"]; ok {
		d.CaseLatencyQuantiles = h.SummaryQuantiles()
	}
	if shaken != nil {
		st := shaken.Stats()
		d.Link = &obs.LinkReport{
			Dropped:    st.Dropped,
			Duplicated: st.Duplicated,
			Reordered:  st.Reordered,
			Corrupted:  st.Corrupted,
			Delayed:    st.Delayed,
		}
	}
	return d
}

// cmdCheckMetrics is the CI metrics-smoke gate: it parses a -metrics-out
// file, runs the schema validator, and prints the headline numbers. A
// missing file, schema mismatch, zero phase duration, or zero path count
// exits non-zero via the returned error.
func cmdCheckMetrics(args []string) error {
	fs := flag.NewFlagSet("checkmetrics", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: meissa checkmetrics <report.json>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	// Dispatch on the schema field: run reports and regress reports share
	// the checkmetrics entry point.
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	if head.Schema == regress.Schema {
		return checkRegressReport(data)
	}
	if head.Schema == experiments.BenchSchema {
		return checkBenchReport(data)
	}
	rep, err := obs.ParseReport(data)
	if err != nil {
		return err
	}
	fmt.Printf("ok: %s %s (parallel %d) wall=%v\n",
		rep.Command, rep.Program, rep.Parallelism, time.Duration(rep.WallNS).Round(time.Millisecond))
	if rep.TraceID != "" {
		fmt.Printf("  trace %s\n", rep.TraceID)
	}
	for _, p := range rep.Phases {
		fmt.Printf("  phase %-10s %v\n", p.Name, p.Dur().Round(time.Microsecond))
	}
	if rep.Paths != nil {
		fmt.Printf("  paths explored=%d pruned=%d templates=%d (10^%.1f -> 10^%.1f)\n",
			rep.Paths.Explored, rep.Paths.Pruned, rep.Paths.Templates,
			rep.Paths.PossibleLog10Before, rep.Paths.PossibleLog10After)
	}
	if rep.Solver != nil {
		fmt.Printf("  solver queries=%d solved=%d outcomes=%v\n",
			rep.Solver.TotalQueries, rep.Solver.Solved, rep.Solver.Outcomes)
		if q := rep.Solver.LatencyQuantiles; q != nil {
			fmt.Printf("  solver latency p50=%v p90=%v p99=%v\n",
				time.Duration(q.P50).Round(time.Microsecond),
				time.Duration(q.P90).Round(time.Microsecond),
				time.Duration(q.P99).Round(time.Microsecond))
		}
	}
	if rep.Driver != nil {
		fmt.Printf("  driver pass=%d fail=%d flaky=%d lost=%d window=%d verdicts/s=%.0f\n",
			rep.Driver.Passed, rep.Driver.Failed, rep.Driver.Flaky, rep.Driver.Lost,
			rep.Driver.Window, rep.Driver.VerdictsPerSec)
		if q := rep.Driver.CaseLatencyQuantiles; q != nil {
			fmt.Printf("  driver case latency p50=%v p90=%v p99=%v\n",
				time.Duration(q.P50).Round(time.Microsecond),
				time.Duration(q.P90).Round(time.Microsecond),
				time.Duration(q.P99).Round(time.Microsecond))
		}
		if rep.Driver.BreakerTripped {
			fmt.Printf("  driver breaker tripped: %d cases short-circuited to lost\n", rep.Driver.ShortCircuited)
		}
	}
	if st := rep.Store; st != nil {
		fmt.Printf("  store warmed=%d cache_seeded=%d invalidated=%d committed=%d cache_committed=%d duplicates=%d\n",
			st.Warmed, st.CacheSeeded, st.Invalidated, st.Committed, st.CacheCommitted, st.Duplicates)
		fmt.Printf("  store txns=%d wal_replays=%d pages_torn=%d snapshot_reads=%d\n",
			st.Commits, st.WalReplays, st.PagesTorn, st.SnapshotReads)
	}
	if sh := rep.Shard; sh != nil {
		if sh.Fallback {
			fmt.Printf("  shard fallback: %s\n", sh.FallbackReason)
		} else {
			fmt.Printf("  shard workers=%d units=%d (completed=%d quarantined=%d)\n",
				sh.Workers, sh.Units, sh.UnitsCompleted, sh.UnitsQuarantined)
			fmt.Printf("  shard leases issued=%d completed=%d expired=%d superseded=%d reassigned=%d\n",
				sh.LeasesIssued, sh.LeasesCompleted, sh.LeasesExpired, sh.LeasesSuperseded, sh.LeasesReassigned)
			fmt.Printf("  shard records merged=%d duplicate=%d harvested=%d; restarts=%d corrupt_frames=%d kills=%d\n",
				sh.RecordsMerged, sh.RecordsDuplicate, sh.RecordsHarvested,
				sh.WorkerRestarts, sh.CorruptFrames, sh.KillsInjected)
		}
	}
	if d := rep.Daemon; d != nil {
		fmt.Printf("  daemon %s: families=%d requests=%d warm_hits=%d store_conflicts=%d (%.1f req/s)\n",
			d.Addr, d.Families, d.RequestsServed, d.WarmHits, d.StoreConflicts, d.RequestsPerSec)
		fmt.Printf("  daemon queue_wait=%v ttfv=%v\n",
			time.Duration(d.QueueWaitNS).Round(time.Microsecond),
			time.Duration(d.TimeToFirstVerdictNS).Round(time.Microsecond))
	}
	if fl := rep.Fleet; fl != nil {
		// ParseReport already ran FleetReport.Validate, so reaching here
		// means the accounting identity held: every merged counter equals
		// the sum of the per-worker deltas.
		fmt.Printf("  fleet identity ok: coordinator totals == sum of %d worker deltas (trace %s)\n",
			len(fl.Workers), fl.TraceID)
		for _, w := range fl.Workers {
			status := "ok"
			switch {
			case w.Killed:
				status = "chaos-killed"
			case w.Died:
				status = "died"
			}
			fmt.Printf("  fleet worker %d (slot %d): units=%d status=%s flight_events=%d\n",
				w.Worker, w.Slot, len(w.Units), status, len(w.Flight))
		}
	}
	return nil
}

// checkBenchReport validates a meissa.bench-report/v1 document (the CI
// perf-smoke gate): every embedded run report must pass the obs schema
// validator, and the gw-1 pipelined-vs-lockstep driver throughput pair —
// the hot-path headline — is printed when present.
func checkBenchReport(data []byte) error {
	var br experiments.BenchReport
	if err := json.Unmarshal(data, &br); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if len(br.Runs) == 0 {
		return fmt.Errorf("bench report has no runs")
	}
	var lockstep, pipelined float64
	var storeWarm, storeResume, daemonWarm *obs.Report
	for _, r := range br.Runs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("bench run %s/%s: %w", r.Program, r.RuleSet, err)
		}
		if r.Program == "gw-1" && r.RuleSet == "set-1" && r.Driver != nil {
			if r.Driver.Window == 1 {
				lockstep = r.Driver.VerdictsPerSec
			} else {
				pipelined = r.Driver.VerdictsPerSec
			}
		}
		switch r.RuleSet {
		case "store~warm":
			storeWarm = r
		case "store~resume":
			storeResume = r
		case "daemon~warm":
			daemonWarm = r
		}
	}
	fmt.Printf("ok: bench report, %d runs (budget %v, parallel %d)\n",
		len(br.Runs), time.Duration(br.BudgetNS), br.Parallelism)
	if lockstep > 0 && pipelined > 0 {
		fmt.Printf("  gw-1/set-1 driver: lockstep %.0f verdicts/s, pipelined %.0f verdicts/s (%.2fx)\n",
			lockstep, pipelined, pipelined/lockstep)
	}
	if storeWarm != nil && storeWarm.Store != nil && storeWarm.Journal != nil {
		// Store-hit rate: solver interactions answered by store-warmed
		// verdicts out of everything the warm run needed.
		live := uint64(0)
		if storeWarm.Solver != nil {
			live = storeWarm.Solver.Solved
		}
		hits := storeWarm.Journal.Hits
		if total := hits + live; total > 0 {
			fmt.Printf("  %s warm store: hit rate %.1f%% (%d store-answered, %d live), %d verdicts warmed\n",
				storeWarm.Program, 100*float64(hits)/float64(total), hits, live, storeWarm.Store.Warmed)
		}
		if storeResume != nil && storeResume.WallNS > 0 {
			fmt.Printf("  %s warm store vs journal replay: %v vs %v (%+.0f%%)\n",
				storeWarm.Program,
				time.Duration(storeWarm.WallNS).Round(time.Microsecond),
				time.Duration(storeResume.WallNS).Round(time.Microsecond),
				100*(float64(storeWarm.WallNS)-float64(storeResume.WallNS))/float64(storeResume.WallNS))
		}
	}
	if daemonWarm != nil && daemonWarm.Daemon != nil {
		d := daemonWarm.Daemon
		fmt.Printf("  %s warm daemon: TTFV %v (queue %v), %.1f requests/s over %d served (%d warm hits)\n",
			daemonWarm.Program,
			time.Duration(d.TimeToFirstVerdictNS).Round(time.Microsecond),
			time.Duration(d.QueueWaitNS).Round(time.Microsecond),
			d.RequestsPerSec, d.RequestsServed, d.WarmHits)
		if storeWarm != nil && storeWarm.WallNS > 0 && daemonWarm.WallNS > 0 {
			fmt.Printf("  %s warm daemon vs warm store run: %v vs %v\n",
				daemonWarm.Program,
				time.Duration(daemonWarm.WallNS).Round(time.Microsecond),
				time.Duration(storeWarm.WallNS).Round(time.Microsecond))
		}
	}
	return nil
}

// checkRegressReport validates and summarizes a meissa.regress-report/v1
// file (the CI regress-smoke gate).
func checkRegressReport(data []byte) error {
	rep, err := regress.ParseReport(data)
	if err != nil {
		return err
	}
	fmt.Printf("ok: regress %s wall=%v\n", rep.Program, time.Duration(rep.WallNS).Round(time.Millisecond))
	fmt.Printf("  delta tables=%v +%d -%d ~%d\n", rep.Delta.TablesChanged,
		rep.Delta.EntriesAdded, rep.Delta.EntriesRemoved, rep.Delta.EntriesModified)
	fmt.Printf("  journal retained=%d/%d invalidated=%d unindexed=%d\n",
		rep.Journal.Retained, rep.Journal.Baseline, rep.Journal.Invalidated, rep.Journal.Unindexed)
	fmt.Printf("  templates current=%d unchanged=%d added=%d retired=%d\n",
		rep.Templates.Current, rep.Templates.Unchanged, rep.Templates.Added, rep.Templates.Retired)
	fmt.Printf("  queries live=%d avoided=%d reuse=%.2f\n",
		rep.Queries.Live, rep.Queries.Avoided, rep.Queries.Reuse)
	return nil
}
