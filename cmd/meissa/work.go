package main

import (
	"flag"
	"os"
	"strconv"
	"time"

	meissa "repro"
	"repro/internal/shard"
)

// cmdWork runs the worker side of sharded generation: over stdin/stdout
// when spawned by a local coordinator (the hidden subprocess transport),
// or over one dialed connection when -connect names a coordinator's
// `-workers tcp://host:port` listener — the remote-host mode. A dialed
// worker serves exactly one run and exits when the coordinator closes
// the connection.
func cmdWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	connect := fs.String("connect", "", "dial a coordinator listener (tcp://host:port) instead of serving stdin/stdout")
	wait := fs.Duration("connect-wait", 30*time.Second, "keep retrying the dial this long before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return meissa.ServeShardWorker(os.Stdin, os.Stdout)
	}
	conn, err := shard.DialWorker(*connect, *wait)
	if err != nil {
		return err
	}
	defer conn.Close()
	return meissa.ServeShardWorker(conn, conn)
}

// parseWorkers interprets the -workers flag value: a plain integer is a
// subprocess count; anything with a scheme or colon is a listen address
// for remote workers, with remote as the slot count.
func parseWorkers(v string, remote int) (workers int, listen string, err error) {
	if v == "" || v == "0" {
		return 0, "", nil
	}
	if n, aerr := strconv.Atoi(v); aerr == nil {
		return n, "", nil
	}
	return remote, v, nil
}
