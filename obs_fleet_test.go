package meissa_test

import (
	"fmt"
	"regexp"
	"testing"
	"time"

	meissa "repro"
	"repro/internal/obs"
)

// registryDelta brackets fn with snapshots of the process registry and
// returns what fn added. Metric tests must diff, not read absolutes:
// the registry is process-global and other tests contribute to it.
func registryDelta(t *testing.T, fn func()) *obs.Snapshot {
	t.Helper()
	pre := obs.Default().Snapshot()
	fn()
	return obs.Default().Snapshot().Delta(pre)
}

// solverCounters are the identity-checked keys: every solver query in a
// sharded run happens either in the coordinator process (split +
// journal-replay merge) or inside a worker's accepted unit delta.
var solverCounters = []string{"smt.queries_sat", "smt.queries_unsat", "smt.queries_unknown"}

// TestFleetMetricsIdentity is the differential accounting test for the
// cross-process metric merge: on the same program,
//
//	sequential counter == sharded coordinator delta + fleet merged counter
//
// must hold exactly for the solver query counters — sharding may move
// work between processes but can neither lose nor invent a query.
func TestFleetMetricsIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(*meissa.Options)
	}{
		{name: "Router"},
		{name: "gw-1", mod: func(o *meissa.Options) {
			// The chaos variant of the identity: kills mid-unit must not
			// leak partial work into the merge (mirrors
			// TestShardedSurvivesWorkerKills). The 10ms path sleep keeps
			// units slow enough that the seeded kills land on workers that
			// finished booting — a kill during subprocess startup leaves
			// nothing to harvest and nothing mid-flight to account for.
			o.ShardChaosKills = 2
			o.ShardChaosSeed = 1
			o.ShardPathSleep = 10 * time.Millisecond
			o.LeaseTimeout = 2 * time.Second
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := corpusProgram(t, tc.name)

			var seq *meissa.GenResult
			seqDelta := registryDelta(t, func() { seq = generateAt(t, p, false, 1) })

			var sh *meissa.GenResult
			shardDelta := registryDelta(t, func() { sh = generateSharded(t, p, tc.mod) })

			if sh.Shard == nil || sh.Shard.Fallback {
				t.Fatalf("run did not shard: %+v", sh.Shard)
			}
			fleet := sh.Fleet
			if fleet == nil {
				t.Fatal("sharded run produced no fleet report")
			}
			if err := fleet.Validate(); err != nil {
				t.Fatalf("fleet identity (merged == Σ workers) violated: %v", err)
			}
			if sh.TraceID == "" || fleet.TraceID != sh.TraceID {
				t.Fatalf("trace not propagated: run %q fleet %q", sh.TraceID, fleet.TraceID)
			}

			merged := fleet.Merged
			if merged == nil {
				t.Fatal("fleet has no merged snapshot")
			}
			for _, key := range solverCounters {
				want := seqDelta.Counters[key]
				got := shardDelta.Counters[key] + merged.Counters[key]
				if got != want {
					t.Errorf("%s: sequential %d != coordinator %d + fleet merged %d",
						key, want, shardDelta.Counters[key], merged.Counters[key])
				}
			}
			// The coordinator's merge replay re-walks exactly the tree the
			// sequential engine explored; on top of that the coordinator pays
			// the SplitFrontier prefix walk, which the fleet report itemizes.
			var splitPaths uint64
			if fleet.Split != nil {
				splitPaths = fleet.Split.Counters["sym.paths_explored"]
			}
			if sq, cq := seqDelta.Counters["sym.paths_explored"], shardDelta.Counters["sym.paths_explored"]; sq+splitPaths != cq {
				t.Errorf("sym.paths_explored: sequential %d + split %d != sharded coordinator %d", sq, splitPaths, cq)
			}

			// Every accepted unit completion left one span named w<id>/u<idx>
			// under the run's trace.
			spanName := regexp.MustCompile(`^w\d+/u\d+$`)
			for _, sp := range merged.Spans {
				if !spanName.MatchString(sp.Path) {
					t.Errorf("merged span %q does not match w<worker>/u<unit>", sp.Path)
				}
			}
			if len(merged.Spans) == 0 {
				t.Error("no unit spans in the fleet merge")
			}

			// Unit coverage: the accepted units across workers are exactly the
			// completed frontier.
			units := 0
			for _, w := range fleet.Workers {
				units += len(w.Units)
			}
			if units != sh.Shard.UnitsCompleted {
				t.Errorf("fleet unit coverage %d != shard units_completed %d", units, sh.Shard.UnitsCompleted)
			}

			// Chaos runs: killed workers must leave a harvested flight
			// recording — the crash timeline a SIGKILL cannot erase.
			if tc.mod != nil {
				killed := 0
				for _, w := range fleet.Workers {
					if w.Killed {
						killed++
						if !w.Died {
							t.Errorf("worker %d killed but not marked died", w.Worker)
						}
						if len(w.Flight) == 0 {
							t.Errorf("killed worker %d has no harvested flight events", w.Worker)
						}
						for _, ev := range w.Flight {
							if ev.Kind == obs.FlightNone {
								t.Errorf("worker %d flight event with invalid kind: %+v", w.Worker, ev)
							}
						}
					}
				}
				if killed == 0 {
					t.Error("chaos run recorded no killed workers")
				}
			}

			// The full v2 report — fleet section included — validates.
			rep := sh.Report("gen", p.Prog.Name, 1)
			if rep.Schema != obs.ReportSchema {
				t.Fatalf("report schema = %q", rep.Schema)
			}
			if err := rep.Validate(); err != nil {
				t.Fatalf("sharded run report invalid: %v", err)
			}
			_ = seq // output equivalence is covered by TestShardedMatchesSequential
		})
	}
}

// TestFleetWorkerFlightTimeline checks the harvested timeline of a
// killed worker reads like a real execution: a journal open, then unit
// lifecycle events in seq order with sane timestamps.
func TestFleetWorkerFlightTimeline(t *testing.T) {
	p := corpusProgram(t, "gw-1")
	sh := generateSharded(t, p, func(o *meissa.Options) {
		o.ShardChaosKills = 2
		o.ShardChaosSeed = 1
		// Slow units so the kills hit workers that are past Init (and so
		// have at least a journal-open event in their flight file).
		o.ShardPathSleep = 10 * time.Millisecond
		o.LeaseTimeout = 2 * time.Second
	})
	if sh.Fleet == nil {
		t.Fatal("no fleet report")
	}
	checked := 0
	for _, w := range sh.Fleet.Workers {
		if len(w.Flight) == 0 {
			continue
		}
		checked++
		var prevSeq uint64
		var prevNS int64
		for i, ev := range w.Flight {
			if i > 0 && ev.Seq <= prevSeq {
				t.Errorf("worker %d flight seqs not increasing: %d after %d", w.Worker, ev.Seq, prevSeq)
			}
			if ev.UnixNS < prevNS {
				t.Errorf("worker %d flight timestamps regress at seq %d", w.Worker, ev.Seq)
			}
			prevSeq, prevNS = ev.Seq, ev.UnixNS
			if s := ev.Kind.String(); s == "" || s == fmt.Sprintf("kind_%d", uint32(ev.Kind)) {
				t.Errorf("worker %d event kind %d has no symbolic name", w.Worker, ev.Kind)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no worker carried a flight recording")
	}
}
