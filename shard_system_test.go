package meissa_test

// End-to-end tests for fault-tolerant sharded exploration (the
// robustness tentpole): the same test binary doubles as the worker
// subprocess — TestMain diverts to ServeShardWorker before the test
// framework can write anything to stdout, keeping the protocol stream
// clean.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	meissa "repro"
	"repro/internal/programs"
	"repro/internal/shard"
)

func TestMain(m *testing.M) {
	if os.Getenv("MEISSA_SHARD_WORKER") == "1" {
		if err := meissa.ServeShardWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "shard worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if addr := os.Getenv("MEISSA_SHARD_CONNECT"); addr != "" {
		// Remote-worker mode: dial the coordinator's listener and serve
		// one run over the connection (the `meissa work -connect` path).
		conn, err := shard.DialWorker(addr, 30*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard dial:", err)
			os.Exit(1)
		}
		err = meissa.ServeShardWorker(conn, conn)
		conn.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard remote worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerCommand re-executes this test binary in worker mode.
func workerCommand() *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "MEISSA_SHARD_WORKER=1")
	return cmd
}

// firstDiff locates the first diverging line of two renderings for a
// readable failure message.
func firstDiff(want, got string) string {
	a, b := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("line %d:\n  seq:   %s\n  shard: %s", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(a), len(b))
}

// generateSharded runs one generation with sharding on and any extra
// option tweaks applied.
func generateSharded(t *testing.T, p *programs.Program, mod func(*meissa.Options)) *meissa.GenResult {
	t.Helper()
	opts := meissa.DefaultOptions()
	opts.CodeSummary = false // match generateAt(t, p, false, 1)
	opts.Parallelism = 1
	opts.ShardWorkers = 4
	opts.WorkerCommand = workerCommand
	if mod != nil {
		mod(&opts)
	}
	sys, err := meissa.New(p.Prog, p.Rules, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestShardedMatchesSequential: the headline guarantee — a multi-process
// sharded run produces a template set byte-identical to the sequential
// engine, on multiple corpus programs.
func TestShardedMatchesSequential(t *testing.T) {
	for _, name := range []string{"Router", "gw-1"} {
		t.Run(name, func(t *testing.T) {
			p := corpusProgram(t, name)
			seq := generateAt(t, p, false, 1)
			shard := generateSharded(t, p, nil)
			if got, want := renderTemplates(shard.Templates), renderTemplates(seq.Templates); got != want {
				t.Fatalf("sharded output diverges from sequential (%d vs %d templates)\n%s",
					len(shard.Templates), len(seq.Templates), firstDiff(want, got))
			}
			rep := shard.Shard
			if rep == nil {
				t.Fatal("no shard report on a sharded run")
			}
			if rep.Fallback {
				t.Fatalf("unexpected fallback: %s", rep.FallbackReason)
			}
			if rep.Units == 0 || rep.UnitsCompleted != rep.Units || rep.UnitsQuarantined != 0 {
				t.Fatalf("unit accounting off: %+v", rep)
			}
			if rep.LeasesIssued != rep.LeasesCompleted+rep.LeasesExpired {
				t.Fatalf("lease identity broken: %+v", rep)
			}
		})
	}
}

// TestShardedSurvivesWorkerKills: chaos mode SIGKILLs live workers
// mid-generation; leases expire or fail over, units are reassigned, and
// the merged output is still byte-identical to sequential.
func TestShardedSurvivesWorkerKills(t *testing.T) {
	p := corpusProgram(t, "gw-1")
	seq := generateAt(t, p, false, 1)
	shard := generateSharded(t, p, func(o *meissa.Options) {
		o.ShardChaosKills = 2
		o.ShardChaosSeed = 1
		// Stretch units so kills land mid-generation, and keep lease
		// recovery snappy.
		o.ShardPathSleep = 500 * time.Microsecond
		o.LeaseTimeout = 2 * time.Second
	})
	if got, want := renderTemplates(shard.Templates), renderTemplates(seq.Templates); got != want {
		t.Fatalf("output diverged after worker kills (%d vs %d templates)",
			len(shard.Templates), len(seq.Templates))
	}
	rep := shard.Shard
	if rep == nil || rep.Fallback {
		t.Fatalf("chaos run fell back: %+v", rep)
	}
	if rep.KillsInjected != 2 {
		t.Fatalf("kills injected = %d, want 2", rep.KillsInjected)
	}
	if rep.WorkerRestarts == 0 {
		t.Fatal("killed workers were not restarted")
	}
	if rep.LeasesIssued != rep.LeasesCompleted+rep.LeasesExpired {
		t.Fatalf("lease identity broken after kills: %+v", rep)
	}
}

// TestShardedPoisonUnitQuarantined: a unit that crashes every worker it
// is assigned to must be quarantined after MaxAssign attempts, its
// subtree degraded to Unknown, and every other unit's verdicts kept.
// Degradation is a strict superset: all sequential template paths still
// appear.
func TestShardedPoisonUnitQuarantined(t *testing.T) {
	p := corpusProgram(t, "gw-1")
	seq := generateAt(t, p, false, 1)
	shard := generateSharded(t, p, func(o *meissa.Options) {
		o.ShardPoisonUnit = 2
		o.LeaseTimeout = time.Second // backoff = 125ms: quick retries
	})
	rep := shard.Shard
	if rep == nil || rep.Fallback {
		t.Fatalf("poison run fell back: %+v", rep)
	}
	if rep.UnitsQuarantined != 1 {
		t.Fatalf("units quarantined = %d, want 1 (%+v)", rep.UnitsQuarantined, rep)
	}
	if rep.LeasesExpired < uint64(rep.MaxAssign) {
		t.Fatalf("leases expired = %d, want >= MaxAssign %d", rep.LeasesExpired, rep.MaxAssign)
	}
	if rep.DegradedTemplates == 0 {
		t.Fatal("quarantined subtree produced no degraded templates")
	}
	if rep.LeasesIssued != rep.LeasesCompleted+rep.LeasesExpired {
		t.Fatalf("lease identity broken: %+v", rep)
	}

	// Superset check: every sequential path survives; the degraded
	// subtree only weakens verdicts to Unknown, it never loses paths.
	if len(shard.Templates) < len(seq.Templates) {
		t.Fatalf("degraded run lost templates: %d < %d", len(shard.Templates), len(seq.Templates))
	}
	have := make(map[string]bool, len(shard.Templates))
	for _, tm := range shard.Templates {
		have[fmt.Sprint(tm.Path)] = true
	}
	for _, tm := range seq.Templates {
		if !have[fmt.Sprint(tm.Path)] {
			t.Fatalf("sequential path %v missing from degraded run", tm.Path)
		}
	}
}

// TestShardedSpawnFailureFallsBack: if no worker subprocess ever becomes
// usable, the run degrades to in-process exploration with a logged
// reason — and still produces the exact sequential output.
func TestShardedSpawnFailureFallsBack(t *testing.T) {
	p := corpusProgram(t, "Router")
	seq := generateAt(t, p, false, 1)
	shard := generateSharded(t, p, func(o *meissa.Options) {
		o.WorkerCommand = func() *exec.Cmd {
			return exec.Command("/nonexistent/meissa-worker-binary")
		}
		o.LeaseTimeout = time.Second
	})
	rep := shard.Shard
	if rep == nil || !rep.Fallback {
		t.Fatalf("spawn failure did not fall back: %+v", rep)
	}
	if rep.FallbackReason == "" {
		t.Fatal("fallback carries no reason")
	}
	if got, want := renderTemplates(shard.Templates), renderTemplates(seq.Templates); got != want {
		t.Fatal("fallback output diverges from sequential")
	}
}

// TestShardedIneligibleOptionsFallBack: options the shard planner cannot
// honor (bounded exploration here) force an up-front in-process fallback
// with a reason naming the option; ShardWorkers <= 1 simply never
// engages sharding.
func TestShardedIneligibleOptionsFallBack(t *testing.T) {
	p := corpusProgram(t, "Router")

	seq := generateAt(t, p, false, 1)
	bounded := generateSharded(t, p, func(o *meissa.Options) {
		o.MaxPaths = 100000 // far above Router's path count: output unchanged
	})
	rep := bounded.Shard
	if rep == nil || !rep.Fallback {
		t.Fatalf("ineligible options did not fall back: %+v", rep)
	}
	if !strings.Contains(rep.FallbackReason, "MaxPaths") {
		t.Fatalf("fallback reason %q does not name the option", rep.FallbackReason)
	}
	if got, want := renderTemplates(bounded.Templates), renderTemplates(seq.Templates); got != want {
		t.Fatal("ineligible-option fallback diverges from sequential")
	}

	single := generateSharded(t, p, func(o *meissa.Options) { o.ShardWorkers = 1 })
	if single.Shard != nil {
		t.Fatalf("ShardWorkers=1 produced a shard report: %+v", single.Shard)
	}
	if got, want := renderTemplates(single.Templates), renderTemplates(seq.Templates); got != want {
		t.Fatal("single-worker run diverges from sequential")
	}
}

// freeTCPAddr reserves an ephemeral port and releases it for the
// coordinator's listener; the window between release and re-listen is
// covered by the workers' dial retry.
func freeTCPAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestShardedRemoteTCPMatchesSequential: the listener transport — remote
// workers dialing in over TCP instead of being spawned over pipes —
// produces output byte-identical to the sequential engine, through the
// same fingerprint handshake and lease supervision.
func TestShardedRemoteTCPMatchesSequential(t *testing.T) {
	p := corpusProgram(t, "gw-1")
	seq := generateAt(t, p, false, 1)

	addr := "tcp://" + freeTCPAddr(t)
	var procs []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "MEISSA_SHARD_CONNECT="+addr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
	}
	reaped := false
	defer func() {
		if !reaped {
			for _, c := range procs {
				c.Process.Kill()
				c.Wait()
			}
		}
	}()

	gen := generateSharded(t, p, func(o *meissa.Options) {
		o.ShardWorkers = 2
		o.ShardListen = addr
	})
	if got, want := renderTemplates(gen.Templates), renderTemplates(seq.Templates); got != want {
		t.Fatalf("remote TCP output diverges from sequential (%d vs %d templates)\n%s",
			len(gen.Templates), len(seq.Templates), firstDiff(want, got))
	}
	rep := gen.Shard
	if rep == nil {
		t.Fatal("no shard report on a sharded run")
	}
	if rep.Fallback {
		t.Fatalf("unexpected fallback: %s", rep.FallbackReason)
	}
	if rep.Units == 0 || rep.UnitsCompleted != rep.Units {
		t.Fatalf("unit accounting off: %+v", rep)
	}

	// The coordinator half-closed each connection at shutdown; the
	// workers must drain and exit zero on their own.
	reaped = true
	for _, c := range procs {
		if err := c.Wait(); err != nil {
			t.Fatalf("remote worker exit: %v", err)
		}
	}
}
