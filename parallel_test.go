package meissa_test

// Differential test for the parallel exploration engine (tentpole
// acceptance): on every corpus program, with and without code summary,
// Parallelism ∈ {2, 4, 8} must produce a template set byte-identical to
// the legacy sequential engine (Parallelism: 1) — same paths, constraints,
// models, final states, hash obligations, Dropped flags, ordering and IDs.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	meissa "repro"
	"repro/internal/expr"
	"repro/internal/programs"
	"repro/internal/sym"
)

// renderTemplates is a deterministic byte-comparable rendering (map keys
// sorted; everything else in stored order).
func renderTemplates(ts []*sym.Template) string {
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "#%d path=%v dropped=%v uncertain=%v\n", t.ID, t.Path, t.Dropped, t.Uncertain)
		for _, c := range t.Constraints {
			fmt.Fprintf(&b, "  C %s\n", c)
		}
		var fvars []string
		for v := range t.Final {
			fvars = append(fvars, string(v))
		}
		sort.Strings(fvars)
		for _, v := range fvars {
			fmt.Fprintf(&b, "  F %s=%s\n", v, t.Final[expr.Var(v)])
		}
		var mvars []string
		for v := range t.Model {
			mvars = append(mvars, string(v))
		}
		sort.Strings(mvars)
		for _, v := range mvars {
			fmt.Fprintf(&b, "  M %s=%d\n", v, t.Model[expr.Var(v)])
		}
		for _, ob := range t.HashObligations {
			fmt.Fprintf(&b, "  H %s kind=%v width=%d inputs=%v\n", ob.Var, ob.Kind, ob.Width, ob.Inputs)
		}
	}
	return b.String()
}

func generateAt(t *testing.T, p *programs.Program, codeSummary bool, parallelism int) *meissa.GenResult {
	t.Helper()
	opts := meissa.DefaultOptions()
	opts.CodeSummary = codeSummary
	opts.Parallelism = parallelism
	sys, err := meissa.New(p.Prog, p.Rules, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestParallelMatchesSequentialOnCorpus(t *testing.T) {
	for _, p := range programs.All() {
		p := p
		if testing.Short() && p.Name == "gw-4" {
			continue // ~15s across all (P, summary) combinations
		}
		for _, codeSummary := range []bool{true, false} {
			name := fmt.Sprintf("%s/summary=%v", p.Name, codeSummary)
			t.Run(name, func(t *testing.T) {
				seq := generateAt(t, p, codeSummary, 1)
				want := renderTemplates(seq.Templates)
				for _, par := range []int{2, 4, 8} {
					got := generateAt(t, p, codeSummary, par)
					if r := renderTemplates(got.Templates); r != want {
						// Find the first diverging line for a readable failure.
						a, b := strings.Split(want, "\n"), strings.Split(r, "\n")
						line := "?"
						for i := 0; i < len(a) && i < len(b); i++ {
							if a[i] != b[i] {
								line = fmt.Sprintf("line %d:\n  seq: %s\n  par: %s", i, a[i], b[i])
								break
							}
						}
						t.Fatalf("P=%d template set differs from sequential (%d vs %d templates); first divergence at %s",
							par, len(seq.Templates), len(got.Templates), line)
					}
					if got.PathsExplored != seq.PathsExplored {
						t.Errorf("P=%d PathsExplored = %d, want %d", par, got.PathsExplored, seq.PathsExplored)
					}
					if got.PrunedPaths != seq.PrunedPaths {
						t.Errorf("P=%d PrunedPaths = %d, want %d", par, got.PrunedPaths, seq.PrunedPaths)
					}
					// SMT-call parity: checks + cache hits within ±10% of the
					// sequential call count.
					total := got.SMTCalls + got.SMTCacheHits
					lo, hi := seq.SMTCalls*9/10, seq.SMTCalls*11/10
					if total < lo || total > hi {
						t.Errorf("P=%d SMT calls %d (+%d cache hits) outside ±10%% of sequential %d",
							par, got.SMTCalls, got.SMTCacheHits, seq.SMTCalls)
					}
				}
			})
		}
	}
}
