// Package meissa is a from-scratch reproduction of "Meissa: Scalable
// Network Testing for Programmable Data Planes" (SIGCOMM 2022): a testing
// system for multi-switch multi-pipeline data plane programs that achieves
// 100% path coverage through a domain-specific code summary technique.
//
// The pipeline mirrors Figure 2 of the paper:
//
//	LPI spec + P4 program + table rules
//	    → control flow graph        (internal/cfg)
//	    → code summary              (internal/summary)
//	    → test case templates       (internal/sym)
//	    → test driver               (internal/driver)
//	    → test report
//
// Quick start:
//
//	prog := p4.MustParse(src)
//	sys, _ := meissa.New(prog, ruleSet, specs, meissa.DefaultOptions())
//	gen, _ := sys.Generate()
//	target, _ := switchsim.Compile(prog, ruleSet, nil)
//	report, _ := sys.Test(driver.NewLoopback(target), gen)
//	fmt.Println(report.Summary())
package meissa

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cfg"
	"repro/internal/driver"
	"repro/internal/expr"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/regress"
	"repro/internal/rulediff"
	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/summary"
	"repro/internal/switchsim"
	"repro/internal/sym"
)

// Options configure the system.
type Options struct {
	// CodeSummary enables the paper's core technique (§3.3). Disabling it
	// runs the basic framework (Algorithm 1) over the whole program — the
	// "w/o code summary" configuration of Fig. 11/12.
	CodeSummary bool
	// UsePreconditions toggles inter-pipeline public pre-condition
	// filtering within code summary (ablation).
	UsePreconditions bool
	// EarlyTermination toggles §3.2 path pruning (ablation).
	EarlyTermination bool
	// IncrementalSolving toggles solver push/pop state reuse (ablation).
	IncrementalSolving bool
	// Parallelism is the exploration worker count, applied to both the
	// within-pipeline summarization runs and the final generation pass:
	// 0 uses GOMAXPROCS, 1 runs the exact legacy sequential engine (the
	// paper-faithful ablation baseline), N > 1 splits the DFS frontier
	// across N workers sharing one solver-verdict cache. Templates are
	// byte-identical at any setting.
	Parallelism int
	// MaxPaths caps DFS descents per exploration (0 = unlimited); the
	// harness uses it as a timeout substitute for intractable baselines.
	MaxPaths uint64
	// Deadline bounds each exploration's wall-clock time (0 = none).
	Deadline time.Duration
	// SolverOverhead adds a fixed per-check solver cost, emulating
	// out-of-process SMT solvers (ablation only; see smt.Options).
	SolverOverhead time.Duration
	// SolverSearchBudget overrides the per-query backtracking-step budget
	// (0 keeps the smt default). Exhaustion yields Unknown, never Unsat:
	// the affected path is conservatively kept, so budget-limited runs
	// generate a superset of the unlimited run's templates.
	SolverSearchBudget int
	// SolverCheckTimeout bounds each solver query's wall-clock time
	// (0 = none). Same conservative Unknown semantics as the step budget.
	SolverCheckTimeout time.Duration
	// Strict disables per-path panic isolation: a panic anywhere in
	// exploration aborts the process (fail-fast debugging mode). The
	// default recovers per-path panics into GenResult.PathErrors and
	// keeps exploring.
	Strict bool
	// Checkpoint, when non-empty, names a journal file making generation
	// crash-safe: every solver verdict is appended before use, so a run
	// killed mid-exploration can Resume without re-solving decided paths.
	Checkpoint string
	// Resume loads the Checkpoint journal written by an interrupted run
	// of the same program/rules/options and answers journaled solver
	// interactions from it. The journal's fingerprint must match; a
	// mismatched journal is an error, not silent corruption.
	Resume bool
	// PathHook, when non-nil, is invoked on every completed path descent
	// before its verdict is decided. Fault-injection hook for crash-safety
	// tests; nil in production.
	PathHook func(path []cfg.NodeID)
	// Baseline, when non-empty, names a previous run's checkpoint journal
	// to rebase onto this run's rule set before exploring (incremental
	// regression). Requires Checkpoint: the rebased journal is written
	// there, Resume is implied, and only records invalidated by RuleDelta
	// are re-solved. The baseline file itself is never modified.
	Baseline string
	// BaselineFingerprint is the fingerprint the Baseline journal was
	// written under (the baseline system's Fingerprint()); opening the
	// baseline cross-checks it.
	BaselineFingerprint uint64
	// RuleDelta lists the dependency tags the rule update invalidates
	// (rulediff.Delta.InvalidTags): a full "<table>#..." tag retires that
	// one branch, a bare table name retires every branch of the table.
	// Ignored unless Baseline is set; an empty list retains everything.
	RuleDelta []string
	// Store, when non-nil, is an open disk-backed verdict store
	// (internal/store) the run warms from and commits to: a prior run of
	// the same program family answers journaled solver interactions
	// without re-solving, a stored rule set that differs from this run's
	// is reconciled by one atomic invalidate-and-update transaction, and
	// the run's own verdicts are committed back in one transaction at the
	// end. The caller owns the store's lifecycle. Mutually exclusive with
	// StorePath.
	Store *store.Store
	// StorePath, when non-empty, names a store file the run opens (and
	// creates on first use), uses exactly like Store, and closes before
	// returning — the `gen -store` / `regress -store` CLI path.
	StorePath string
	// StoreWait bounds how long opening StorePath waits for the store's
	// advisory lock when another process (typically the resident daemon)
	// holds it, retrying until the deadline before failing with
	// store.ErrStoreBusy. Zero makes exactly one attempt — the
	// `-store-wait` CLI flag.
	StoreWait time.Duration
	// VerdictCache, when non-nil, is used as the run's shared solver
	// verdict cache instead of a fresh one — the watch-mode path, where
	// consecutive incremental runs keep the cache warm across rule
	// updates (the caller invalidates changed tags between runs). The
	// cache must have been populated under the same solver options.
	VerdictCache *smt.VerdictCache
	// ShardWorkers, when > 1, farms the final generation pass across that
	// many worker subprocesses under lease-based supervision
	// (internal/shard). Crashed, hung, or corrupt workers have their work
	// units reassigned with backoff; a unit that keeps killing workers is
	// quarantined (its subtree degrades to Unknown — a superset, never a
	// loss); the merged run is byte-identical to a single-process run.
	// Option combinations that cannot shard (MaxPaths, Deadline, Resume,
	// Baseline, VerdictCache, PathHook) and total worker failure fall back
	// to the in-process engine with a logged reason. 0 or 1 disables
	// sharding.
	ShardWorkers int
	// ShardListen, when non-empty, swaps the subprocess transport for a
	// listener at this address ("tcp://host:port" or "unix://path"):
	// instead of spawning local workers the coordinator waits for
	// `meissa work -connect` processes — possibly on other hosts — to
	// dial in, speaking the same CRC-framed protocol with the same
	// fingerprint verify-or-retire handshake. ShardWorkers still sets
	// the slot count. A listener that stays empty past the ready
	// timeout falls back to the in-process engine.
	ShardListen string
	// LeaseTimeout is the shard lease progress deadline: a worker that
	// makes no path progress for this long is presumed hung, killed, and
	// its unit reassigned (0 = 10s default).
	LeaseTimeout time.Duration
	// WorkerCommand builds one worker subprocess invocation; the
	// coordinator owns its stdin/stdout. Nil re-executes the current
	// binary with the `work` subcommand — correct for the meissa CLI;
	// library embedders must supply their own.
	WorkerCommand func() *exec.Cmd
	// ShardChaosKills SIGKILLs that many seeded-random live workers
	// spread across the run; ShardChaosSeed seeds the choice
	// (fault-injection testing only).
	ShardChaosKills int
	ShardChaosSeed  int64
	// ShardPathSleep slows workers by sleeping per explored path, so
	// injected faults land mid-generation (testing only).
	ShardPathSleep time.Duration
	// ShardPoisonUnit, when > 0, makes every worker assigned the frontier
	// unit at index ShardPoisonUnit-1 die instantly — a deterministic
	// permanently-crashing unit that must end up quarantined (testing
	// only).
	ShardPoisonUnit int
}

// DefaultOptions is the full Meissa configuration.
func DefaultOptions() Options {
	return Options{
		CodeSummary:        true,
		UsePreconditions:   true,
		EarlyTermination:   true,
		IncrementalSolving: true,
	}
}

// System is a data plane program under test.
type System struct {
	Prog  *p4.Program
	Rules *rules.Set
	Specs []*spec.Spec
	Opts  Options
}

// New validates the program and builds a system.
func New(prog *p4.Program, rs *rules.Set, specs []*spec.Spec, opts Options) (*System, error) {
	if err := p4.Check(prog); err != nil {
		return nil, fmt.Errorf("meissa: %w", err)
	}
	if rs == nil {
		rs = rules.NewSet()
	}
	return &System{Prog: prog, Rules: rs, Specs: specs, Opts: opts}, nil
}

// GenResult is the output of test case generation.
type GenResult struct {
	// Templates are the generated test case templates, one per valid
	// path (full path coverage, §3.4).
	Templates []*sym.Template
	// Graph is the (possibly summarized) CFG.
	Graph *cfg.Graph
	// SummaryStats holds per-pipeline summarization statistics; nil when
	// code summary is disabled.
	SummaryStats *summary.Stats
	// PathsExplored counts DFS descents across all phases.
	PathsExplored uint64
	// FinalPathsExplored counts DFS descents of the final template
	// generation pass alone (excluding summarization work).
	FinalPathsExplored uint64
	// SMTCalls counts solver checks across all phases (Fig. 11b unit).
	SMTCalls uint64
	// FinalSMTCalls counts solver checks of the final pass alone.
	FinalSMTCalls uint64
	// PrunedPaths counts prefixes cut by early termination across all
	// phases.
	PrunedPaths uint64
	// SMTCacheHits counts solver checks answered from the shared verdict
	// cache (parallel mode only; such checks are not in SMTCalls).
	SMTCacheHits uint64
	// PossiblePathsLog10Before/After record the whole-graph possible-path
	// counts (Fig. 11c unit).
	PossiblePathsLog10Before float64
	PossiblePathsLog10After  float64
	// Duration is the wall-clock generation time (Fig. 9/10 unit).
	Duration time.Duration
	// Truncated reports that MaxPaths was hit — coverage is incomplete.
	Truncated bool
	// SMTUnknowns counts solver queries that came back undecided across
	// all phases; SMTBudgetExhausted counts the subset cut off by the
	// per-query step/time budget. Undecided paths are kept, marked
	// Template.Uncertain.
	SMTUnknowns        uint64
	SMTBudgetExhausted uint64
	// Recovered counts per-path panics recovered during exploration
	// (Strict off); PathErrors holds the recorded details.
	Recovered  uint64
	PathErrors []*sym.PathError
	// JournalHits counts solver interactions answered from the resume
	// journal instead of being re-solved (Resume runs only).
	JournalHits uint64
	// JournalAppended counts verdict records durably written to the
	// checkpoint journal this run; JournalLoaded counts records recovered
	// from it at open (Resume runs only). Both are zero when Checkpoint is
	// unset.
	JournalAppended uint64
	JournalLoaded   uint64
	// Rebase accounts for the baseline-journal rebase of an incremental
	// regression run (nil unless Options.Baseline was set).
	Rebase *regress.RebaseStats
	// Phases records the wall-clock duration of each generation phase
	// ("cfg", "summary" when code summary ran, "sym"), in execution order.
	// The same timings aggregate under "generate/<phase>" span paths in
	// the process obs registry.
	Phases []obs.PhaseDur
	// SMT is the full aggregated solver statistics across all phases
	// (summarization passes plus the final pass). The scalar fields above
	// (SMTCalls, SMTCacheHits, SMTUnknowns, SMTBudgetExhausted) are
	// projections of it kept for compatibility.
	SMT smt.Stats
	// Shard is the multi-process supervision summary; nil unless
	// Options.ShardWorkers > 1 (Fallback set when the run degraded to the
	// in-process engine).
	Shard *obs.ShardReport
	// Store is the durable verdict-store activity summary; nil unless
	// Options.Store/StorePath was set.
	Store *obs.StoreReport
	// TraceID is the run-wide trace identifier stamped at generation
	// start and propagated to every shard worker.
	TraceID string
	// Fleet is the cross-process metric merge for sharded runs: the
	// coordinator's split-phase registry delta plus the fold of every
	// completed unit's worker-side delta (nil for in-process runs).
	Fleet *obs.FleetReport
}

// Generate builds the CFG, applies code summary when enabled, and runs
// the final template generation (Algorithm 2 line 27 / Algorithm 1).
func (s *System) Generate() (*GenResult, error) {
	start := time.Now()
	genSpan := obs.Begin("generate")
	defer genSpan.End()
	cfgSpan := obs.Begin("generate/cfg")
	g, err := cfg.Build(s.Prog, s.Rules)
	cfgDur := cfgSpan.End()
	if err != nil {
		return nil, fmt.Errorf("meissa: build CFG: %w", err)
	}
	res := &GenResult{Graph: g, TraceID: obs.NewTraceID()}
	res.Phases = append(res.Phases, obs.PhaseDur{Name: "cfg", NS: int64(cfgDur), Count: 1})
	res.PossiblePathsLog10Before = g.PossiblePathsLog10()
	obs.Progressf("meissa: %s: CFG built in %v (10^%.1f possible paths)",
		s.Prog.Name, cfgDur, res.PossiblePathsLog10Before)

	symOpts := sym.Options{
		EarlyTermination: s.Opts.EarlyTermination,
		Solver:           s.solverOptions(),
		SolverSet:        true,
		Parallelism:      s.Opts.Parallelism,
		MaxPaths:         s.Opts.MaxPaths,
		Deadline:         s.Opts.Deadline,
		WantModels:       false,
		Strict:           s.Opts.Strict,
		PathHook:         s.Opts.PathHook,
	}
	if s.Opts.VerdictCache != nil {
		// Watch mode: the caller owns a cache that survives across runs.
		symOpts.Solver.Cache = s.Opts.VerdictCache
	} else if symOpts.Workers() > 1 {
		// One verdict cache spans the whole run, so Unsat prefixes proved
		// during summarization of one pipeline also answer the final pass.
		symOpts.Solver.Cache = smt.NewVerdictCache()
	}

	// Assume clauses of all specs that share identical assumptions scope
	// generation; with multiple differing specs, generation stays
	// unscoped and the checker applies each spec to matching inputs.
	initC, err := s.commonAssumes()
	if err != nil {
		return nil, err
	}

	resume := s.Opts.Resume
	if s.Opts.Baseline != "" {
		// Incremental regression: rebase the baseline journal onto this
		// run's rule set, dropping only the records whose dependency tags
		// the rule delta invalidates, then resume from the rebased copy.
		if s.Opts.Checkpoint == "" {
			return nil, fmt.Errorf("meissa: Baseline requires Checkpoint (the rebased journal's path)")
		}
		rebaseSpan := obs.Begin("generate/rebase")
		st, rerr := regress.Rebase(s.Opts.Baseline, s.Opts.Checkpoint,
			s.Opts.BaselineFingerprint, s.fingerprint(initC), rulediff.Matcher(s.Opts.RuleDelta))
		rebaseDur := rebaseSpan.End()
		if rerr != nil {
			return nil, fmt.Errorf("meissa: %w", rerr)
		}
		res.Rebase = st
		res.Phases = append(res.Phases, obs.PhaseDur{Name: "rebase", NS: int64(rebaseDur), Count: 1})
		resume = true
		obs.Progressf("meissa: %s: rebase: %d/%d baseline verdicts retained (%d invalidated, %d unindexed)",
			s.Prog.Name, st.Retained, st.Baseline, st.Invalidated, st.Unindexed)
	}

	shardOK, shardReason := s.shardPlan()

	stc, err := s.openStoreCtx(initC)
	if err != nil {
		return nil, err
	}
	if stc != nil {
		defer stc.release()
	}

	// Sharding needs a journal for the crash-safe merge even when the
	// caller asked for no checkpoint; a temp one serves and is discarded.
	// A store-backed run needs one too: the post-run commit harvests the
	// journal's records (for a sharded run, the coordinator's merged
	// journal — that is how worker verdicts reach the store).
	jPath := s.Opts.Checkpoint
	if (shardOK || stc != nil) && jPath == "" {
		dir, derr := os.MkdirTemp("", "meissa-shard-")
		if derr != nil {
			if stc != nil {
				return nil, fmt.Errorf("meissa: store: temp journal: %w", derr)
			}
			shardOK, shardReason = false, fmt.Sprintf("temp merge journal: %v", derr)
		} else {
			defer os.RemoveAll(dir)
			jPath = filepath.Join(dir, "coordinator.journal")
		}
	}

	// Store warm start: export the family's surviving records into the
	// journal and resume from it. Explicit Resume and Baseline runs bring
	// their own journal contents, so warming is skipped for them.
	if stc != nil && !resume && s.Opts.Baseline == "" {
		warmed, werr := stc.warm(s, jPath, symOpts.Solver.Cache)
		if werr != nil {
			return nil, fmt.Errorf("meissa: store: %w", werr)
		}
		if warmed > 0 {
			resume = true
			if shardOK {
				// shardPlan only sees Opts.Resume; the store-warmed resume
				// disqualifies sharding the same way an explicit one does.
				shardOK, shardReason = false, "store-warmed resume"
			}
			obs.Progressf("meissa: %s: store: warm start with %d stored verdicts", s.Prog.Name, warmed)
		}
	}
	var j *journal.Journal
	if jPath != "" {
		j, err = journal.Open(jPath, s.fingerprint(initC), resume)
		if err != nil {
			return nil, fmt.Errorf("meissa: checkpoint: %w", err)
		}
		// The sharded pass replaces j (close + reopen after the merge), so
		// close whatever handle is current at return, not the first one.
		defer func() {
			if j != nil {
				j.Close()
			}
		}()
		symOpts.Journal = j
		if resume {
			obs.Progressf("meissa: %s: resume: %d journaled verdicts loaded", s.Prog.Name, j.Loaded())
		}
	}

	if s.Opts.CodeSummary {
		sumOpts := summary.Options{
			Sym:              symOpts,
			UsePreconditions: s.Opts.UsePreconditions,
			InitConstraints:  initC,
		}
		sumSpan := obs.Begin("generate/summary")
		stats, err := summary.Summarize(g, sumOpts)
		sumDur := sumSpan.End()
		if err != nil {
			return nil, fmt.Errorf("meissa: %w", err)
		}
		res.Phases = append(res.Phases, obs.PhaseDur{Name: "summary", NS: int64(sumDur), Count: 1})
		res.SummaryStats = stats
		res.SMT.Add(stats.SMT)
		res.SMTCalls += stats.SMT.Checks
		res.SMTCacheHits += stats.SMT.CacheHits
		res.PathsExplored += stats.PathsExplored
		res.PrunedPaths += stats.PrunedPaths
		if stats.Truncated {
			res.Truncated = true
		}
		res.SMTUnknowns += stats.SMT.Unknowns
		res.SMTBudgetExhausted += stats.SMT.BudgetExhausted
		res.Recovered += stats.Recovered
		res.PathErrors = append(res.PathErrors, stats.PathErrors...)
		res.JournalHits += stats.JournalHits
		obs.Progressf("meissa: %s: summary done in %v (%d paths, %d solver checks)",
			s.Prog.Name, sumDur, stats.PathsExplored, stats.SMT.Checks)
	}

	finalOpts := symOpts
	finalOpts.WantModels = true
	fcfg := sym.Config{
		Graph:           g,
		Start:           cfg.None,
		InitConstraints: initC,
		Options:         finalOpts,
	}
	symSpan := obs.Begin("generate/sym")
	var exp *sym.Result
	if shardOK {
		exp, err = s.shardedFinalPass(fcfg, &j, jPath, s.fingerprint(initC), res)
	} else {
		if s.Opts.ShardWorkers > 1 {
			obs.Warnf("meissa: %s: sharding disabled: %s; using in-process engine", s.Prog.Name, shardReason)
			res.Shard = &obs.ShardReport{Workers: s.Opts.ShardWorkers, Fallback: true, FallbackReason: shardReason}
		}
		exp, err = sym.Explore(fcfg)
	}
	symDur := symSpan.End()
	if err != nil {
		return nil, fmt.Errorf("meissa: %w", err)
	}
	res.Phases = append(res.Phases, obs.PhaseDur{Name: "sym", NS: int64(symDur), Count: 1})
	res.Templates = exp.Templates
	res.SMT.Add(exp.SMT)
	res.SMTCalls += exp.SMT.Checks
	res.FinalSMTCalls = exp.SMT.Checks
	res.SMTCacheHits += exp.SMT.CacheHits
	res.PathsExplored += exp.PathsExplored
	res.FinalPathsExplored = exp.PathsExplored
	res.PrunedPaths += exp.PrunedPaths
	if exp.Truncated {
		res.Truncated = true
	}
	res.SMTUnknowns += exp.SMT.Unknowns
	res.SMTBudgetExhausted += exp.SMT.BudgetExhausted
	res.Recovered += exp.Recovered
	res.PathErrors = append(res.PathErrors, exp.PathErrors...)
	res.JournalHits += exp.JournalHits
	res.PossiblePathsLog10After = g.PossiblePathsLog10()
	res.Duration = time.Since(start)
	if j != nil {
		res.JournalAppended = j.Appended()
		res.JournalLoaded = uint64(j.Loaded())
	}
	if stc != nil {
		if err := stc.commitJournal(s, jPath, symOpts.Solver.Cache); err != nil {
			return nil, fmt.Errorf("meissa: store: %w", err)
		}
		res.Store = stc.report()
	}
	obs.Progressf("meissa: %s: generation done in %v (%d templates, %d paths, %d solver checks, %d cache hits)",
		s.Prog.Name, res.Duration, len(res.Templates), res.PathsExplored, res.SMTCalls, res.SMTCacheHits)
	return res, nil
}

// Report builds the machine-readable run report (obs.ReportSchema) for
// this generation: phase durations, path counts before/after summary
// reduction, the solver outcome histogram, and journal activity. The
// caller may extend it (the test subcommand adds the driver section) and
// attach a registry snapshot before writing it out.
func (g *GenResult) Report(command, program string, parallelism int) *obs.Report {
	rep := &obs.Report{
		Schema:      obs.ReportSchema,
		Command:     command,
		Program:     program,
		Parallelism: parallelism,
		WallNS:      int64(g.Duration),
		Phases:      g.Phases,
		Paths: &obs.PathReport{
			Explored:            g.PathsExplored,
			FinalExplored:       g.FinalPathsExplored,
			Pruned:              g.PrunedPaths,
			Templates:           len(g.Templates),
			PossibleLog10Before: g.PossiblePathsLog10Before,
			PossibleLog10After:  g.PossiblePathsLog10After,
			Truncated:           g.Truncated,
			Recovered:           g.Recovered,
		},
		Solver: obs.NewSolverReport(g.SMT.Checks, g.SMT.SatResults, g.SMT.UnsatResults,
			g.SMT.Unknowns, g.SMTCacheHits, g.SMT.BudgetExhausted, g.Duration),
		Journal: &obs.JournalReport{
			Appended: g.JournalAppended,
			Loaded:   g.JournalLoaded,
			Hits:     g.JournalHits,
		},
	}
	if h, ok := obs.Default().Snapshot().Histograms["smt.query_latency_ns"]; ok {
		rep.Solver.LatencyNS = &h
		rep.Solver.LatencyQuantiles = h.SummaryQuantiles()
	}
	rep.TraceID = g.TraceID
	rep.Fleet = g.Fleet
	rep.Shard = g.Shard
	rep.Store = g.Store
	return rep
}

func (s *System) solverOptions() smt.Options {
	o := smt.DefaultOptions()
	o.Incremental = s.Opts.IncrementalSolving
	o.PerCheckOverhead = s.Opts.SolverOverhead
	if s.Opts.SolverSearchBudget > 0 {
		o.SearchBudget = s.Opts.SolverSearchBudget
	}
	o.CheckTimeout = s.Opts.SolverCheckTimeout
	return o
}

// fingerprint digests everything that determines solver verdicts — the
// program, the rules, the generation-scoping assume clauses, and the
// verdict-affecting options — into the checkpoint journal's identity.
// Parallelism, MaxPaths and Deadline are deliberately excluded: they
// change how much gets explored, never what any query's verdict is, so a
// journal written at one setting resumes correctly at another.
func (s *System) fingerprint(initC []expr.Bool) uint64 {
	h := fnv.New64a()
	io.WriteString(h, p4.Print(s.Prog))
	io.WriteString(h, s.Rules.String())
	for _, b := range initC {
		io.WriteString(h, b.String())
		io.WriteString(h, "\n")
	}
	so := s.solverOptions()
	fmt.Fprintf(h, "|cs=%v pre=%v et=%v inc=%v sb=%d ct=%d cpv=%d",
		s.Opts.CodeSummary, s.Opts.UsePreconditions, s.Opts.EarlyTermination,
		s.Opts.IncrementalSolving, so.SearchBudget, so.CheckTimeout, so.CandidatesPerVar)
	return h.Sum64()
}

// Fingerprint returns the system's checkpoint-journal identity: the
// digest of the program, rules, generation-scoping assume clauses, and
// verdict-affecting options. A baseline journal written by one system
// rebases onto another via Options.BaselineFingerprint.
func (s *System) Fingerprint() (uint64, error) {
	initC, err := s.commonAssumes()
	if err != nil {
		return 0, err
	}
	return s.fingerprint(initC), nil
}

// commonAssumes translates spec assume clauses shared by every spec.
func (s *System) commonAssumes() ([]expr.Bool, error) {
	if len(s.Specs) == 0 {
		return nil, nil
	}
	first, err := s.Specs[0].AssumeConstraints(s.Prog)
	if err != nil {
		return nil, fmt.Errorf("meissa: %w", err)
	}
	if len(s.Specs) == 1 {
		return first, nil
	}
	keep := make(map[string]bool, len(first))
	for _, b := range first {
		keep[b.String()] = true
	}
	for _, sp := range s.Specs[1:] {
		bs, err := sp.AssumeConstraints(s.Prog)
		if err != nil {
			return nil, fmt.Errorf("meissa: %w", err)
		}
		have := map[string]bool{}
		for _, b := range bs {
			have[b.String()] = true
		}
		for k := range keep {
			if !have[k] {
				delete(keep, k)
			}
		}
	}
	var out []expr.Bool
	for _, b := range first {
		if keep[b.String()] {
			out = append(out, b)
		}
	}
	return out, nil
}

// NewDriver builds the system's test driver over a link, for callers
// that tune resilience knobs (Retries, CaseTimeout, RecvTimeout, Backoff)
// before running the suite.
func (s *System) NewDriver(link driver.Link, gen *GenResult) *driver.Driver {
	return driver.New(s.Prog, gen.Graph, link, s.Specs)
}

// Test runs the generated templates against a target over the link and
// returns the report.
func (s *System) Test(link driver.Link, gen *GenResult) (*driver.Report, error) {
	return s.NewDriver(link, gen).RunTemplates(gen.Templates)
}

// TestTarget compiles nothing — it wires a loopback link to the given
// target and runs the full test suite.
func (s *System) TestTarget(target *switchsim.Target, gen *GenResult) (*driver.Report, error) {
	return s.Test(driver.NewLoopback(target), gen)
}

// Localize produces the §7 bug-localization trace for a failing outcome:
// the symbolic path (executed actions, hit table rules, branching) from
// the template, side by side with the target's physical trace when the
// link captured one.
func Localize(gen *GenResult, o *driver.Outcome, target *switchsim.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Bug localization for test case %d ===\n", o.Case.ID)
	if len(o.Mismatches) > 0 {
		b.WriteString("prediction mismatches (likely NON-CODE bug — compiled target diverges from source semantics):\n")
		for _, m := range o.Mismatches {
			fmt.Fprintf(&b, "  - %s\n", m)
		}
	}
	if len(o.Violations) > 0 {
		b.WriteString("intent violations (code bug if prediction matches output, else non-code):\n")
		for _, v := range o.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	if len(o.ChecksumErrors) > 0 {
		b.WriteString("checksum errors:\n")
		for _, c := range o.ChecksumErrors {
			fmt.Fprintf(&b, "  - %s\n", c)
		}
	}
	b.WriteString("symbolic trace (source semantics):\n")
	for _, id := range o.Case.Template.Path {
		n := gen.Graph.Node(id)
		if n.Comment == "" {
			continue
		}
		fmt.Fprintf(&b, "  %s: %s\n", n.Comment, n.StmtString())
	}
	if target != nil {
		b.WriteString("physical trace (compiled target):\n")
		for _, line := range target.Trace {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
